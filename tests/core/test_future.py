"""Tests for future-application characterization and distributions."""

import pytest
from hypothesis import given, strategies as st

from repro.core.future import (
    DEFAULT_MESSAGE_SIZE_DISTRIBUTION,
    DEFAULT_WCET_DISTRIBUTION,
    DiscreteDistribution,
    FutureCharacterization,
)
from repro.utils.errors import InvalidModelError


class TestDiscreteDistribution:
    def test_probabilities_normalized(self):
        d = DiscreteDistribution((1, 2), (2.0, 2.0))
        assert d.probabilities == (0.5, 0.5)

    def test_mean(self):
        d = DiscreteDistribution((10, 20), (0.5, 0.5))
        assert d.mean == 15.0

    def test_empty_rejected(self):
        with pytest.raises(InvalidModelError):
            DiscreteDistribution((), ())

    def test_length_mismatch_rejected(self):
        with pytest.raises(InvalidModelError):
            DiscreteDistribution((1, 2), (1.0,))

    def test_non_positive_value_rejected(self):
        with pytest.raises(InvalidModelError):
            DiscreteDistribution((0,), (1.0,))

    def test_negative_probability_rejected(self):
        with pytest.raises(InvalidModelError):
            DiscreteDistribution((1,), (-1.0,))

    def test_all_zero_probabilities_rejected(self):
        with pytest.raises(InvalidModelError):
            DiscreteDistribution((1, 2), (0.0, 0.0))

    def test_sample_deterministic_by_seed(self):
        d = DEFAULT_WCET_DISTRIBUTION
        assert d.sample(5, 10) == d.sample(5, 10)

    def test_sample_values_in_support(self):
        d = DEFAULT_WCET_DISTRIBUTION
        assert set(d.sample(0, 200)) <= set(d.values)

    def test_sample_negative_count_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_WCET_DISTRIBUTION.sample(0, -1)

    def test_zero_probability_value_never_sampled(self):
        d = DiscreteDistribution((1, 99), (1.0, 0.0))
        assert set(d.sample(0, 100)) == {1}


class TestDeterministicBag:
    def test_empty_for_zero_total(self):
        assert DEFAULT_WCET_DISTRIBUTION.deterministic_bag(0) == []

    def test_reaches_total(self):
        bag = DEFAULT_WCET_DISTRIBUTION.deterministic_bag(1000)
        assert sum(bag) >= 1000
        # Overshoot bounded by one largest object.
        assert sum(bag) < 1000 + max(DEFAULT_WCET_DISTRIBUTION.values)

    def test_deterministic(self):
        d = DEFAULT_WCET_DISTRIBUTION
        assert d.deterministic_bag(500) == d.deterministic_bag(500)

    def test_single_value(self):
        d = DiscreteDistribution((7,), (1.0,))
        assert d.deterministic_bag(21) == [7, 7, 7]
        assert d.deterministic_bag(20) == [7, 7, 7]

    def test_composition_tracks_probabilities(self):
        d = DiscreteDistribution((10, 20), (0.75, 0.25))
        bag = d.deterministic_bag(10_000)
        share_10 = bag.count(10) / len(bag)
        assert 0.70 <= share_10 <= 0.80

    @given(total=st.integers(1, 5000))
    def test_bag_sums_past_total(self, total):
        bag = DEFAULT_MESSAGE_SIZE_DISTRIBUTION.deterministic_bag(total)
        assert sum(bag) >= total
        assert all(v in DEFAULT_MESSAGE_SIZE_DISTRIBUTION.values for v in bag)


class TestFutureCharacterization:
    def test_validation(self):
        with pytest.raises(InvalidModelError):
            FutureCharacterization(t_min=0, t_need=1, b_need=1)
        with pytest.raises(InvalidModelError):
            FutureCharacterization(t_min=10, t_need=-1, b_need=1)
        with pytest.raises(InvalidModelError):
            FutureCharacterization(t_min=10, t_need=1, b_need=-1)

    def test_t_need_may_exceed_t_min(self):
        # Total across processors: legal on a parallel platform.
        fc = FutureCharacterization(t_min=10, t_need=40, b_need=1)
        assert fc.t_need == 40

    def test_demands_scale_with_windows(self):
        fc = FutureCharacterization(t_min=100, t_need=40, b_need=8)
        assert fc.total_process_demand(400) == 160
        assert fc.total_message_demand(400) == 32

    def test_demand_truncates_partial_window(self):
        fc = FutureCharacterization(t_min=100, t_need=40, b_need=8)
        assert fc.total_process_demand(350) == 120

    def test_demand_invalid_horizon(self):
        fc = FutureCharacterization(t_min=100, t_need=40, b_need=8)
        with pytest.raises(ValueError):
            fc.total_process_demand(0)

    def test_bags_respect_distributions(self):
        fc = FutureCharacterization(
            t_min=100,
            t_need=40,
            b_need=8,
            wcet_distribution=DiscreteDistribution((5,), (1.0,)),
            message_size_distribution=DiscreteDistribution((2,), (1.0,)),
        )
        assert fc.future_process_bag(400) == [5] * 32
        assert fc.future_message_bag(400) == [2] * 16

    def test_zero_need_gives_empty_bags(self):
        fc = FutureCharacterization(t_min=100, t_need=0, b_need=0)
        assert fc.future_process_bag(400) == []
        assert fc.future_message_bag(400) == []

    def test_hashable_for_caching(self):
        fc = FutureCharacterization(t_min=100, t_need=40, b_need=8)
        assert hash(fc) == hash(
            FutureCharacterization(t_min=100, t_need=40, b_need=8)
        )
