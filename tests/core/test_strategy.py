"""Tests for the design flow plumbing: spec, evaluator, results, registry."""

import pytest

from repro.core.adhoc import AdHocStrategy
from repro.core.future import DiscreteDistribution, FutureCharacterization
from repro.core.mapping_heuristic import MappingHeuristic
from repro.core.simulated_annealing import SimulatedAnnealing
from repro.core.strategy import (
    DesignEvaluator,
    DesignResult,
    DesignSpec,
    design_application,
    fits_future_application,
    make_strategy,
)
from repro.core.transformations import CandidateDesign
from repro.model.application import Application
from repro.model.mapping import Mapping
from repro.sched.priorities import hcp_priorities
from repro.sched.schedule import SystemSchedule



@pytest.fixture
def future() -> FutureCharacterization:
    return FutureCharacterization(
        t_min=40,
        t_need=20,
        b_need=4,
        wcet_distribution=DiscreteDistribution((10,), (1.0,)),
        message_size_distribution=DiscreteDistribution((2,), (1.0,)),
    )


@pytest.fixture
def spec(arch2, chain_app, future) -> DesignSpec:
    return DesignSpec(architecture=arch2, current=chain_app, future=future)


class TestDesignSpec:
    def test_effective_horizon_from_app(self, spec):
        assert spec.effective_horizon() == 80

    def test_effective_horizon_from_base(self, arch2, chain_app, future):
        base = SystemSchedule(arch2, 160)
        s = DesignSpec(
            architecture=arch2,
            current=chain_app,
            future=future,
            base_schedule=base,
        )
        assert s.effective_horizon() == 160

    def test_effective_horizon_explicit(self, arch2, chain_app, future):
        s = DesignSpec(
            architecture=arch2, current=chain_app, future=future, horizon=240
        )
        assert s.effective_horizon() == 240


class TestDesignEvaluator:
    def test_valid_candidate_evaluated(self, spec, arch2, chain_app):
        evaluator = DesignEvaluator(spec)
        design = CandidateDesign(
            Mapping(chain_app, arch2, {p.id: "N1" for p in chain_app.processes}),
            hcp_priorities(chain_app, arch2.bus),
        )
        out = evaluator.evaluate(design)
        assert out is not None
        assert out.objective >= 0
        assert evaluator.evaluations == 1

    def test_invalid_candidate_returns_none(self, arch2, chain_app, future):
        base = SystemSchedule(arch2, 80)
        base.place_process("wall1", 0, "N1", 0, 75, frozen=True)
        base.place_process("wall2", 0, "N2", 0, 75, frozen=True)
        spec = DesignSpec(
            architecture=arch2,
            current=chain_app,
            future=future,
            base_schedule=base,
        )
        evaluator = DesignEvaluator(spec)
        design = CandidateDesign(
            Mapping(chain_app, arch2, {p.id: "N1" for p in chain_app.processes}),
            hcp_priorities(chain_app, arch2.bus),
        )
        assert evaluator.evaluate(design) is None
        assert evaluator.evaluations == 1


class TestDesignResult:
    def test_invalid_objective_is_inf(self):
        assert DesignResult("AH", valid=False).objective == float("inf")


class TestRegistry:
    def test_make_strategy_types(self):
        assert isinstance(make_strategy("AH"), AdHocStrategy)
        assert isinstance(make_strategy("mh"), MappingHeuristic)
        assert isinstance(make_strategy("SA"), SimulatedAnnealing)

    def test_kwargs_forwarded(self):
        sa = make_strategy("SA", iterations=7)
        assert sa.iterations == 7

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            make_strategy("GA")

    def test_design_application_runs(self, spec):
        result = design_application(spec, "AH")
        assert result.valid
        assert result.strategy == "AH"
        assert result.runtime_seconds > 0


class TestTimedDecorator:
    def test_wraps_preserves_introspection(self):
        # functools.wraps must keep the full metadata, not just
        # __doc__/__name__ as the original hand-rolled decorator did.
        for cls in (AdHocStrategy, MappingHeuristic, SimulatedAnnealing):
            design = cls.design
            assert design.__name__ == "design"
            assert design.__qualname__ == f"{cls.__name__}.design"
            assert design.__module__ == cls.__module__
            assert design.__doc__
            assert hasattr(design, "__wrapped__")


class TestFitsFutureApplication:
    def test_fits_on_empty_system(self, arch2, chain_app):
        base = SystemSchedule(arch2, 80)
        assert fits_future_application(base, chain_app, arch2)

    def test_does_not_fit_on_full_system(self, arch2, chain_app):
        base = SystemSchedule(arch2, 80)
        base.place_process("w1", 0, "N1", 0, 78, frozen=True)
        base.place_process("w2", 0, "N2", 0, 78, frozen=True)
        assert not fits_future_application(base, chain_app, arch2)

    def test_does_not_mutate_base(self, arch2, chain_app):
        base = SystemSchedule(arch2, 80)
        fits_future_application(base, chain_app, arch2)
        assert len(list(base.all_entries())) == 0
