"""Tests for the HCP-seeded Initial Mapping (IM)."""

import pytest

from repro.core.initial_mapping import InitialMapper
from repro.model.application import Application
from repro.model.mapping import Mapping
from repro.model.process_graph import Message, Process, ProcessGraph
from repro.sched.schedule import SystemSchedule
from repro.utils.errors import MappingError, SchedulingError

from tests.conftest import make_chain_graph


class TestBasicMapping:
    def test_produces_valid_complete_design(self, arch2, fork_join_app):
        mapping, schedule = InitialMapper(arch2).map_and_schedule(fork_join_app)
        assert mapping.is_complete()
        schedule.validate()
        for p in fork_join_app.processes:
            assert schedule.entry_of(p.id, 0) is not None

    def test_respects_allowed_nodes(self, arch2):
        g = ProcessGraph("g", 80)
        g.add_process(Process("only2", {"N2": 10}))
        app = Application("a", [g])
        mapping, _ = InitialMapper(arch2).map_and_schedule(app)
        assert mapping.node_of("only2") == "N2"

    def test_picks_faster_node(self, arch2):
        g = ProcessGraph("g", 80)
        g.add_process(Process("A", {"N1": 30, "N2": 5}))
        app = Application("a", [g])
        mapping, schedule = InitialMapper(arch2).map_and_schedule(app)
        assert mapping.node_of("A") == "N2"
        assert schedule.entry_of("A", 0).end == 5

    def test_parallel_branches_spread_when_beneficial(self, arch2):
        """Two heavy independent processes: earliest-finish puts them on
        different nodes."""
        g = ProcessGraph("g", 200)
        g.add_process(Process("A", {"N1": 50, "N2": 50}))
        g.add_process(Process("B", {"N1": 50, "N2": 50}))
        app = Application("a", [g])
        mapping, _ = InitialMapper(arch2).map_and_schedule(app)
        assert mapping.node_of("A") != mapping.node_of("B")

    def test_mapping_consistent_across_instances(self, arch2):
        app = Application("a", [make_chain_graph(period=40)])
        mapping, schedule = InitialMapper(arch2).map_and_schedule(
            app, horizon=80
        )
        for p in app.processes:
            node = mapping.node_of(p.id)
            for k in (0, 1):
                assert schedule.entry_of(p.id, k).node_id == node

    def test_deadlines_respected(self, arch2):
        app = Application("a", [make_chain_graph(deadline=30)])
        mapping, schedule = InitialMapper(arch2).map_and_schedule(app)
        for p in app.processes:
            assert schedule.entry_of(p.id, 0).end <= 30


class TestAroundBase:
    def test_avoids_frozen_reservations(self, arch2, chain_app):
        base = SystemSchedule(arch2, 80)
        base.place_process("old", 0, "N1", 0, 40, frozen=True)
        base.place_process("old2", 0, "N2", 0, 25, frozen=True)
        mapping, schedule = InitialMapper(arch2).map_and_schedule(
            chain_app, base=base
        )
        for p in chain_app.processes:
            entry = schedule.entry_of(p.id, 0)
            if entry.node_id == "N1":
                assert entry.start >= 40
            else:
                assert entry.start >= 25

    def test_base_untouched(self, arch2, chain_app):
        base = SystemSchedule(arch2, 80)
        base.place_process("old", 0, "N1", 0, 40, frozen=True)
        InitialMapper(arch2).map_and_schedule(chain_app, base=base)
        assert len(list(base.all_entries())) == 1

    def test_failure_returns_none(self, arch2, chain_app):
        base = SystemSchedule(arch2, 80)
        base.place_process("old1", 0, "N1", 0, 75, frozen=True)
        base.place_process("old2", 0, "N2", 0, 75, frozen=True)
        outcome = InitialMapper(arch2).try_map_and_schedule(chain_app, base=base)
        assert outcome is None

    def test_failure_raises_mapping_error(self, arch2, chain_app):
        base = SystemSchedule(arch2, 80)
        base.place_process("old1", 0, "N1", 0, 75, frozen=True)
        base.place_process("old2", 0, "N2", 0, 75, frozen=True)
        with pytest.raises(MappingError):
            InitialMapper(arch2).map_and_schedule(chain_app, base=base)

    def test_horizon_mismatch_rejected(self, arch2, chain_app):
        base = SystemSchedule(arch2, 80)
        with pytest.raises(SchedulingError):
            InitialMapper(arch2).try_map_and_schedule(
                chain_app, base=base, horizon=160
            )

    def test_period_must_divide_horizon(self, arch2, chain_app):
        with pytest.raises(SchedulingError):
            InitialMapper(arch2).try_map_and_schedule(chain_app, horizon=100)


class TestFrozenOutput:
    def test_frozen_flag_freezes_everything(self, arch2):
        g = make_chain_graph()
        app = Application("a", [g])
        _, schedule = InitialMapper(arch2).map_and_schedule(app, frozen=True)
        assert all(e.frozen for e in schedule.all_entries())

    def test_frozen_includes_messages(self, arch2):
        g = ProcessGraph("g", 80)
        g.add_process(Process("A", {"N1": 5}))
        g.add_process(Process("B", {"N2": 5}))
        g.add_message(Message("m", "A", "B", 4))
        app = Application("a", [g])
        _, schedule = InitialMapper(arch2).map_and_schedule(app, frozen=True)
        occs = list(schedule.bus.all_entries())
        assert occs and all(o.frozen for o in occs)


class TestMessageHandling:
    def test_cross_node_messages_on_bus(self, arch2):
        g = ProcessGraph("g", 80)
        g.add_process(Process("A", {"N1": 5}))
        g.add_process(Process("B", {"N2": 5}))
        g.add_message(Message("m", "A", "B", 4))
        app = Application("a", [g])
        mapping, schedule = InitialMapper(arch2).map_and_schedule(app)
        occ = schedule.bus.occupancy_of("m", 0)
        assert occ is not None
        assert occ.node_id == "N1"
        arrival = schedule.bus.arrival_time(occ)
        assert schedule.entry_of("B", 0).start >= arrival

    def test_prefers_local_successor_when_comm_expensive(self, arch2):
        """B can run on either node; staying on A's node avoids a full
        TDMA round of latency and finishes earlier."""
        g = ProcessGraph("g", 200)
        g.add_process(Process("A", {"N1": 5}))
        g.add_process(Process("B", {"N1": 10, "N2": 9}))
        g.add_message(Message("m", "A", "B", 4))
        app = Application("a", [g])
        mapping, _ = InitialMapper(arch2).map_and_schedule(app)
        assert mapping.node_of("B") == "N1"

    def test_rollback_leaves_clean_bus(self, arch2):
        """When the best candidate fails at commit, its partially placed
        messages are rolled back; the final bus contains only the
        messages of the committed design."""
        g = ProcessGraph("g", 80)
        g.add_process(Process("A", {"N1": 5}))
        g.add_process(Process("B", {"N1": 4, "N2": 4}))
        g.add_message(Message("m", "A", "B", 4))
        app = Application("a", [g])
        mapping, schedule = InitialMapper(arch2).map_and_schedule(app)
        expected = 0 if mapping.node_of("B") == "N1" else 1
        assert len(list(schedule.bus.all_entries())) == expected
