"""Tests for the design transformations and CandidateDesign."""

import pytest

from repro.core.transformations import (
    CandidateDesign,
    DelayMessage,
    RemapProcess,
    SwapPriorities,
    remap_moves,
)
from repro.model.mapping import Mapping
from repro.utils.errors import MappingError


@pytest.fixture
def design(fork_join_app, arch2) -> CandidateDesign:
    mapping = Mapping(
        fork_join_app,
        arch2,
        {p.id: "N1" for p in fork_join_app.processes},
    )
    return CandidateDesign(mapping, {"P0": 4.0, "P1": 3.0, "P2": 2.0, "P3": 1.0})


class TestCandidateDesign:
    def test_copy_is_deep(self, design):
        clone = design.copy()
        clone.mapping.assign("P0", "N2")
        clone.priorities["P0"] = 99.0
        clone.message_delays["m0"] = 1
        assert design.mapping.node_of("P0") == "N1"
        assert design.priorities["P0"] == 4.0
        assert design.message_delays == {}


class TestRemapProcess:
    def test_apply(self, design):
        out = RemapProcess("P1", "N2").apply(design)
        assert out.mapping.node_of("P1") == "N2"
        assert design.mapping.node_of("P1") == "N1"

    def test_apply_invalid_node_raises(self, design):
        with pytest.raises(MappingError):
            RemapProcess("P1", "N9").apply(design)

    def test_describe(self):
        assert "P1" in RemapProcess("P1", "N2").describe()


class TestSwapPriorities:
    def test_apply(self, design):
        out = SwapPriorities("P0", "P3").apply(design)
        assert out.priorities["P0"] == 1.0
        assert out.priorities["P3"] == 4.0
        assert design.priorities["P0"] == 4.0

    def test_swap_with_missing_defaults_zero(self, design):
        del design.priorities["P3"]
        out = SwapPriorities("P0", "P3").apply(design)
        assert out.priorities["P0"] == 0.0
        assert out.priorities["P3"] == 4.0

    def test_describe(self):
        assert "<->" in SwapPriorities("a", "b").describe()


class TestDelayMessage:
    def test_increment(self, design):
        out = DelayMessage("m0", +1).apply(design)
        assert out.message_delays == {"m0": 1}

    def test_accumulates(self, design):
        out = DelayMessage("m0", +1).apply(design)
        out = DelayMessage("m0", +2).apply(out)
        assert out.message_delays == {"m0": 3}

    def test_clamped_at_zero_and_cleaned(self, design):
        out = DelayMessage("m0", -5).apply(design)
        assert out.message_delays == {}

    def test_decrement_to_zero_removes_key(self, design):
        out = DelayMessage("m0", +1).apply(design)
        out = DelayMessage("m0", -1).apply(out)
        assert "m0" not in out.message_delays

    def test_describe_signs(self):
        assert "+1" in DelayMessage("m", 1).describe()
        assert "-1" in DelayMessage("m", -1).describe()


class TestRemapMoves:
    def test_generates_all_alternatives(self, design):
        moves = remap_moves(design.mapping, ["P0", "P1"])
        assert {(m.process_id, m.node_id) for m in moves} == {
            ("P0", "N2"),
            ("P1", "N2"),
        }

    def test_skips_current_node(self, design):
        moves = remap_moves(design.mapping, ["P0"])
        assert all(m.node_id != "N1" for m in moves)
