"""Tests for the design metrics C1P/C1m/C2P/C2m and the objective.

Includes the crafted layouts of slides 12 and 13 as exact unit tests.
"""

import pytest

from repro.core.future import DiscreteDistribution, FutureCharacterization
from repro.core.metrics import (
    DesignMetrics,
    ObjectiveWeights,
    evaluate_design,
    metric_c1m,
    metric_c1p,
    metric_c2m,
    metric_c2p,
)
from repro.model.architecture import Architecture, Node
from repro.sched.schedule import SystemSchedule


@pytest.fixture
def arch1() -> Architecture:
    """One node with slot 10 tu / 16 bytes."""
    return Architecture([Node("N1")], slot_length=10, slot_capacity=16)


def future_fixed(t_min, t_need, b_need, wcet=40, msg=4) -> FutureCharacterization:
    return FutureCharacterization(
        t_min=t_min,
        t_need=t_need,
        b_need=b_need,
        wcet_distribution=DiscreteDistribution((wcet,), (1.0,)),
        message_size_distribution=DiscreteDistribution((msg,), (1.0,)),
    )


class TestC1PSlide12:
    """Slide 12: same slack total, different clustering."""

    def test_contiguous_slack_c1_zero(self, arch1):
        s = SystemSchedule(arch1, 160)
        s.place_process("X", 0, "N1", 0, 80)  # slack [80,160) contiguous
        assert metric_c1p(s, future_fixed(160, 80, 1)) == 0.0

    def test_matching_gaps_c1_zero(self, arch1):
        s = SystemSchedule(arch1, 160)
        s.place_process("X", 0, "N1", 40, 40)
        s.place_process("Y", 0, "N1", 120, 40)  # gaps 40+40
        assert metric_c1p(s, future_fixed(160, 80, 1)) == 0.0

    def test_fragmented_gaps_c1_100(self, arch1):
        s = SystemSchedule(arch1, 160)
        for i, start in enumerate((20, 60, 100, 140)):
            s.place_process(f"Z{i}", 0, "N1", start, 20)  # gaps of 20
        assert metric_c1p(s, future_fixed(160, 80, 1)) == 100.0

    def test_partial_packing_percentage(self, arch1):
        """Slide 12c: 75% of the future application does not fit."""
        s = SystemSchedule(arch1, 160)
        # One gap of 40 and the rest shattered: 4 objects of 40 demanded.
        s.place_process("A", 0, "N1", 40, 120)
        fc = future_fixed(160, 160, 1)
        assert metric_c1p(s, fc) == 75.0

    def test_zero_demand_is_zero(self, arch1):
        s = SystemSchedule(arch1, 160)
        assert metric_c1p(s, future_fixed(160, 0, 1)) == 0.0

    def test_policy_parameter(self, arch1):
        s = SystemSchedule(arch1, 160)
        s.place_process("X", 0, "N1", 0, 80)
        fc = future_fixed(160, 80, 1)
        assert metric_c1p(s, fc, policy="first-fit") == 0.0
        assert metric_c1p(s, fc, policy="worst-fit") == 0.0


class TestC1m:
    def test_all_messages_fit(self, arch1):
        s = SystemSchedule(arch1, 160)
        # 16 rounds? horizon 160 / round 10 = 16 occurrences x 16 B.
        assert metric_c1m(s, future_fixed(160, 1, 32)) == 0.0

    def test_bus_fully_used_c1m_100(self, arch1):
        s = SystemSchedule(arch1, 20)
        s.bus.place("m1", 0, "N1", 0, 16)
        s.bus.place("m2", 0, "N1", 1, 16)
        assert metric_c1m(s, future_fixed(20, 1, 8)) == 100.0

    def test_zero_demand_zero(self, arch1):
        s = SystemSchedule(arch1, 20)
        assert metric_c1m(s, future_fixed(20, 1, 0)) == 0.0


class TestC2PSlide13:
    """Slide 13: same slack total, different time distribution."""

    def test_lopsided_slack_c2_zero(self, arch1):
        s = SystemSchedule(arch1, 200)
        s.place_process("A", 0, "N1", 80, 120)  # window 2 fully busy
        fc = future_fixed(100, 40, 1, wcet=20)
        assert metric_c2p(s, fc) == 0

    def test_balanced_slack_c2_40(self, arch1):
        s = SystemSchedule(arch1, 200)
        s.place_process("A", 0, "N1", 0, 60)
        s.place_process("B", 0, "N1", 100, 60)
        fc = future_fixed(100, 40, 1, wcet=20)
        assert metric_c2p(s, fc) == 40

    def test_c2p_sums_over_processors(self, arch2):
        s = SystemSchedule(arch2, 80)
        s.place_process("A", 0, "N1", 0, 20)  # min window slack 20
        fc = future_fixed(40, 10, 1, wcet=10)
        # N1: windows 20, 40 -> min 20; N2: 40, 40 -> min 40.
        assert metric_c2p(s, fc) == 60

    def test_c2m_minimum_window_capacity(self, arch1):
        s = SystemSchedule(arch1, 200)
        s.bus.place("m", 0, "N1", 0, 10)
        fc = future_fixed(100, 1, 8)
        # Window 1: 10 slots... horizon 200, round 10 -> 10 occurrences
        # per 100-tu window, 16 B each; 10 used in window 1.
        assert metric_c2m(s, fc) == 10 * 16 - 10


class TestObjective:
    def test_perfect_design_scores_zero(self, arch1):
        s = SystemSchedule(arch1, 200)
        fc = future_fixed(100, 40, 8, wcet=20)
        metrics = evaluate_design(s, fc)
        assert metrics.objective == 0.0
        assert metrics.c1p == 0.0 and metrics.c1m == 0.0

    def test_penalties_normalized_to_percent(self, arch1):
        s = SystemSchedule(arch1, 200)
        s.place_process("A", 0, "N1", 80, 120)
        fc = future_fixed(100, 40, 1, wcet=20)
        metrics = evaluate_design(s, fc)
        assert metrics.penalty_2p == 100.0  # C2P=0 vs t_need=40

    def test_unnormalized_penalties(self, arch1):
        s = SystemSchedule(arch1, 200)
        s.place_process("A", 0, "N1", 80, 120)
        fc = future_fixed(100, 40, 1, wcet=20)
        metrics = evaluate_design(
            s, fc, ObjectiveWeights(normalize_second=False)
        )
        assert metrics.penalty_2p == 40.0

    def test_weights_scale_terms(self, arch1):
        s = SystemSchedule(arch1, 200)
        s.place_process("A", 0, "N1", 80, 120)
        fc = future_fixed(100, 40, 1, wcet=20)
        base = evaluate_design(s, fc).objective
        doubled = evaluate_design(s, fc, ObjectiveWeights(w2p=2.0)).objective
        assert doubled == pytest.approx(2 * base)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            ObjectiveWeights(w1p=-1)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ObjectiveWeights(binpack_policy="magic")

    def test_summary_renders(self, arch1):
        s = SystemSchedule(arch1, 200)
        fc = future_fixed(100, 40, 8, wcet=20)
        summary = evaluate_design(s, fc).summary()
        assert "C1P" in summary and "C=" in summary

    def test_objective_monotone_in_load(self, arch1):
        """More frozen load never improves the objective."""
        fc = future_fixed(100, 80, 8, wcet=20)
        values = []
        for load in (0, 60, 120, 180):
            s = SystemSchedule(arch1, 200)
            if load:
                s.place_process("A", 0, "N1", 0, min(load, 100))
                if load > 100:
                    s.place_process("B", 0, "N1", 100, load - 100)
            values.append(evaluate_design(s, fc).objective)
        assert values == sorted(values)


class TestFastCoreMatchesReferenceMetrics:
    """The memoized metric core equals the from-scratch metric functions.

    ``evaluate_design`` routes through ``evaluate_design_delta`` (cached
    bags, lean packing kernel, single-pass slack extraction); the
    component functions ``metric_c1p``/``metric_c1m``/``metric_c2p``/
    ``metric_c2m`` keep their original from-scratch implementations.
    This cross-check pins the two paths to each other -- it is also
    what keeps ``benchmarks/bench_delta.py``'s from-scratch reference
    meaningful.
    """

    @pytest.mark.parametrize("policy", ["best-fit", "first-fit", "worst-fit"])
    def test_component_functions_agree(self, policy):
        from repro.core.metrics import (
            ObjectiveWeights,
            evaluate_design,
            metric_c1m,
            metric_c1p,
            metric_c2m,
            metric_c2p,
        )
        from repro.core.initial_mapping import InitialMapper
        from repro.gen.scenario import ScenarioParams, build_scenario

        scenario = build_scenario(
            ScenarioParams(n_existing=12, n_current=8), seed=3
        )
        spec = scenario.spec()
        mapper = InitialMapper(spec.architecture)
        outcome = mapper.try_map_and_schedule(
            spec.current, base=spec.base_schedule
        )
        assert outcome is not None
        _, schedule = outcome
        weights = ObjectiveWeights(binpack_policy=policy)
        metrics = evaluate_design(schedule, spec.future, weights)
        assert metrics.c1p == metric_c1p(schedule, spec.future, policy)
        assert metrics.c1m == metric_c1m(schedule, spec.future, policy)
        assert metrics.c2p == metric_c2p(schedule, spec.future)
        assert metrics.c2m == metric_c2m(schedule, spec.future)
