"""Acceptance-policy semantics (greedy, Metropolis, threshold, any)."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.search.acceptors import (
    AcceptAny,
    GreedyAcceptor,
    MetropolisAcceptor,
    ThresholdAcceptor,
)


@dataclass
class FakeDesign:
    """Acceptors only read ``objective``; a float shell suffices."""

    objective: float


def designs(*objectives):
    return [None if o is None else FakeDesign(o) for o in objectives]


CURRENT = FakeDesign(10.0)


class TestGreedy:
    def test_picks_steepest_improvement(self):
        acceptor = GreedyAcceptor()
        results = designs(9.5, 8.0, 9.0)
        assert acceptor.decide(CURRENT, [], results, None).objective == 8.0

    def test_rejects_non_improving(self):
        acceptor = GreedyAcceptor()
        assert acceptor.decide(CURRENT, [], designs(10.0, 11.0), None) is None

    def test_min_improvement_is_strict(self):
        acceptor = GreedyAcceptor(min_improvement=1.0)
        assert acceptor.decide(CURRENT, [], designs(9.5), None) is None
        assert acceptor.decide(CURRENT, [], designs(8.9), None) is not None

    def test_ignores_invalid_results(self):
        acceptor = GreedyAcceptor()
        results = designs(None, 9.0, None)
        assert acceptor.decide(CURRENT, [], results, None).objective == 9.0

    def test_terminal_on_reject(self):
        assert GreedyAcceptor.terminal_on_reject is True
        assert MetropolisAcceptor.terminal_on_reject is False


class TestMetropolis:
    def test_downhill_accepted_without_rng_draw(self):
        acceptor = MetropolisAcceptor(temperature=1.0)

        class ExplodingRng:
            def random(self):  # pragma: no cover - must not be called
                raise AssertionError("downhill moves must not draw")

        accepted = acceptor.decide(CURRENT, [], designs(9.0), ExplodingRng())
        assert accepted.objective == 9.0

    def test_uphill_draws_once(self):
        acceptor = MetropolisAcceptor(temperature=1e9)
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state["state"]["state"]
        accepted = acceptor.decide(CURRENT, [], designs(10.5), rng)
        after = rng.bit_generator.state["state"]["state"]
        assert before != after
        # At an enormous temperature every uphill move is accepted.
        assert accepted is not None

    def test_cools_every_step_even_on_invalid(self):
        acceptor = MetropolisAcceptor(temperature=2.0, cooling=0.5)
        rng = np.random.default_rng(1)
        acceptor.decide(CURRENT, [], designs(None), rng)
        assert acceptor.temperature == 1.0
        acceptor.decide(CURRENT, [], designs(9.0), rng)
        assert acceptor.temperature == 0.5

    def test_temperature_floor(self):
        acceptor = MetropolisAcceptor(
            temperature=1.0, cooling=0.1, min_temperature=0.25
        )
        rng = np.random.default_rng(2)
        for _ in range(5):
            acceptor.decide(CURRENT, [], designs(9.0), rng)
        assert acceptor.temperature == 0.25

    def test_state_round_trip(self):
        acceptor = MetropolisAcceptor(temperature=3.5)
        fresh = MetropolisAcceptor(temperature=999.0)
        fresh.load_state_dict(acceptor.state_dict())
        assert fresh.temperature == 3.5

    def test_requires_rng(self):
        with pytest.raises(ValueError):
            MetropolisAcceptor(temperature=1.0).decide(
                CURRENT, [], designs(11.0), None
            )


class TestThreshold:
    def test_accepts_within_threshold(self):
        acceptor = ThresholdAcceptor(threshold=1.0)
        assert acceptor.decide(CURRENT, [], designs(10.5), None) is not None

    def test_rejects_beyond_threshold(self):
        acceptor = ThresholdAcceptor(threshold=1.0)
        assert acceptor.decide(CURRENT, [], designs(11.5), None) is None

    def test_takes_first_acceptable_not_best(self):
        acceptor = ThresholdAcceptor(threshold=1.0)
        accepted = acceptor.decide(CURRENT, [], designs(10.5, 8.0), None)
        assert accepted.objective == 10.5

    def test_decay_per_step(self):
        acceptor = ThresholdAcceptor(threshold=4.0, decay=0.5)
        acceptor.decide(CURRENT, [], designs(None), None)
        assert acceptor.threshold == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdAcceptor(threshold=-1.0)
        with pytest.raises(ValueError):
            ThresholdAcceptor(threshold=1.0, decay=0.0)


class TestAcceptAny:
    def test_first_valid_wins(self):
        accepted = AcceptAny().decide(
            CURRENT, [], designs(None, 12.0, 5.0), None
        )
        assert accepted.objective == 12.0

    def test_all_invalid_rejects(self):
        assert AcceptAny().decide(CURRENT, [], designs(None, None), None) is None
