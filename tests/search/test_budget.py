"""Budget composition and stop-verdict semantics."""

import pytest

from repro.search.budget import Budget, BudgetProgress


class TestBudgetLimits:
    def test_unlimited_by_default(self):
        budget = Budget()
        assert budget.unlimited
        progress = BudgetProgress(
            steps=10**9, evaluations=10**9, seconds=1e9, stall=10**9
        )
        assert budget.stop_reason(progress) is None

    def test_each_axis_stops(self):
        assert (
            Budget(max_steps=5).stop_reason(BudgetProgress(steps=5))
            == "budget:steps"
        )
        assert (
            Budget(max_evaluations=100).stop_reason(
                BudgetProgress(evaluations=100)
            )
            == "budget:evaluations"
        )
        assert (
            Budget(max_seconds=1.0).stop_reason(BudgetProgress(seconds=1.0))
            == "budget:seconds"
        )
        assert (
            Budget(patience=3).stop_reason(BudgetProgress(stall=3))
            == "budget:patience"
        )

    def test_below_limit_keeps_going(self):
        budget = Budget(max_steps=5, max_evaluations=100, patience=3)
        progress = BudgetProgress(steps=4, evaluations=99, stall=2)
        assert budget.stop_reason(progress) is None

    def test_negative_limits_rejected(self):
        with pytest.raises(ValueError):
            Budget(max_steps=-1)
        with pytest.raises(ValueError):
            Budget(max_seconds=-0.5)

    def test_zero_budget_stops_immediately(self):
        assert Budget(max_steps=0).stop_reason(BudgetProgress()) == "budget:steps"


class TestComposition:
    def test_and_takes_tighter_limit(self):
        combined = Budget(max_steps=10, max_evaluations=500) & Budget(
            max_steps=3, max_seconds=2.0
        )
        assert combined == Budget(
            max_steps=3, max_evaluations=500, max_seconds=2.0
        )

    def test_identity_composition(self):
        budget = Budget(max_steps=7, patience=2)
        assert (budget & Budget()) == budget
        assert (Budget() & budget) == budget

    def test_combine_ignores_none(self):
        assert Budget.combine(None, Budget(max_steps=4), None) == Budget(
            max_steps=4
        )
        assert Budget.combine() == Budget()

    def test_combine_folds_all(self):
        combined = Budget.combine(
            Budget(max_steps=9),
            Budget(max_steps=4, patience=8),
            Budget(patience=5),
        )
        assert combined == Budget(max_steps=4, patience=5)
