"""Shared fixtures for the search-kernel tests."""

from __future__ import annotations

import pytest

from searchutil import small_scenario, start_of

from repro.core.strategy import DesignEvaluator


@pytest.fixture(scope="module")
def scenario():
    return small_scenario()


@pytest.fixture(scope="module")
def spec(scenario):
    return scenario.spec()


@pytest.fixture(scope="module")
def evaluator(spec):
    with DesignEvaluator(spec) as shared:
        yield shared


@pytest.fixture(scope="module")
def start(spec, evaluator):
    return start_of(spec, evaluator)
