"""Portfolio racing: member/solo equivalence, determinism, budgets."""

from __future__ import annotations

import pytest

from searchutil import small_scenario

from repro.core.strategy import DesignResult
from repro.experiments.runner import (
    design_identity,
    run_portfolio,
    strategy_for_family,
)
from repro.search.budget import Budget
from repro.search.portfolio import (
    PortfolioRunner,
    _pick_winner,
    PortfolioMemberOutcome,
    first_valid,
)

SA_ITERS = 80


@pytest.fixture(scope="module")
def spec():
    return small_scenario(seed=3).spec()


@pytest.fixture(scope="module")
def race(spec):
    return run_portfolio(
        spec, ("AH", "MH", "SA"), seed=1, sa_iterations=SA_ITERS
    )


class TestRace:
    def test_all_members_report(self, race):
        assert [m.name for m in race.members] == ["AH", "MH", "SA"]
        assert all(m.result.valid for m in race.members)
        assert race.valid
        assert race.best is not None

    def test_winner_is_min_objective(self, race):
        best = min(m.result.objective for m in race.members)
        assert race.objective == best

    def test_members_equal_solo_runs(self, spec, race):
        """Racing over a shared engine must not change any member's design."""
        for name in ("AH", "MH", "SA"):
            solo = strategy_for_family(name, 1, True, 1, SA_ITERS).design(spec)
            member = next(m for m in race.members if m.name == name)
            assert design_identity(member.result) == design_identity(solo)

    def test_engine_stats_are_portfolio_level(self, race):
        assert race.evaluations > 0
        # Every engine evaluation is attributed to exactly one member
        # (AH computes its design inline and consumes none).
        assert race.evaluations == sum(
            m.evaluations_served for m in race.members
        )
        # Sharing the engine means members hit each other's entries.
        assert race.cache_hits > 0


class TestDeterminism:
    def test_repeat_is_identical(self, spec, race):
        again = run_portfolio(
            spec, ("AH", "MH", "SA"), seed=1, sa_iterations=SA_ITERS
        )
        assert again.winner_index == race.winner_index
        assert design_identity(again.best) == design_identity(race.best)
        assert again.evaluations == race.evaluations

    def test_jobs_do_not_change_the_race(self, spec, race):
        parallel = run_portfolio(
            spec, ("AH", "MH", "SA"), seed=1, sa_iterations=SA_ITERS, jobs=2
        )
        assert design_identity(parallel.best) == design_identity(race.best)
        assert parallel.evaluations == race.evaluations

    def test_delta_off_does_not_change_the_race(self, spec, race):
        cold = run_portfolio(
            spec,
            ("AH", "MH", "SA"),
            seed=1,
            sa_iterations=SA_ITERS,
            use_delta=False,
        )
        assert design_identity(cold.best) == design_identity(race.best)

    def test_racing_order_does_not_change_the_winning_design(self, spec, race):
        reversed_race = run_portfolio(
            spec, ("SA", "MH", "AH"), seed=1, sa_iterations=SA_ITERS
        )
        assert design_identity(reversed_race.best) == design_identity(
            race.best
        )


class TestSharedBudget:
    def test_budget_bounds_total_evaluations(self, spec):
        result = run_portfolio(
            spec,
            ("MH", "SA"),
            seed=1,
            sa_iterations=SA_ITERS,
            shared_budget=Budget(max_evaluations=100),
        )
        assert result.evaluations <= 100
        assert result.valid
        assert result.budget_cut

    def test_cut_members_report_shared_budget_stop(self, spec):
        result = run_portfolio(
            spec,
            ("SA",),
            seed=1,
            sa_iterations=10**6,  # would run far past the budget
            shared_budget=Budget(max_evaluations=60),
        )
        member = result.members[0]
        assert member.result.search.stop_reason == "shared-budget"
        assert member.result.valid  # cut, but still a complete result

    def test_natural_finishers_free_budget_for_others(self, spec):
        """MH terminates at its local optimum; SA then uses the rest."""
        generous = run_portfolio(
            spec,
            ("MH", "SA"),
            seed=1,
            sa_iterations=10**6,
            shared_budget=Budget(max_evaluations=300),
        )
        mh, sa = generous.members
        assert mh.result.search.stop_reason == "local-optimum"
        assert sa.evaluations_served > 100  # got what MH left on the table


class TestRunnerValidation:
    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValueError):
            PortfolioRunner([])


class TestWinnerTieBreak:
    class _FakeMapping:
        def __init__(self, assignment):
            self._assignment = assignment

        def as_dict(self):
            return dict(self._assignment)

    class _FakeResult:
        def __init__(self, objective, assignment, valid=True):
            self.valid = valid
            self.mapping = TestWinnerTieBreak._FakeMapping(assignment)
            self.priorities = {"P0": 1.0}
            self.message_delays = {}
            self.objective = objective

        # The real tie-break identity, applied to the fake's fields.
        design_identity = DesignResult.design_identity

    def _member(self, index, objective, assignment, valid=True):
        return PortfolioMemberOutcome(
            name=f"m{index}",
            index=index,
            result=self._FakeResult(objective, assignment, valid),
        )

    def test_strictly_better_objective_wins(self):
        members = [
            self._member(0, 5.0, {"P0": "N1"}),
            self._member(1, 3.0, {"P0": "N2"}),
        ]
        assert _pick_winner(members) == 1

    def test_tie_broken_by_canonical_design_not_order(self):
        """The winning *design* must not depend on member order."""
        low = {"P0": "N1"}
        high = {"P0": "N2"}
        forward = [self._member(0, 5.0, high), self._member(1, 5.0, low)]
        backward = [self._member(0, 5.0, low), self._member(1, 5.0, high)]
        assert forward[_pick_winner(forward)].result.mapping.as_dict() == low
        assert backward[_pick_winner(backward)].result.mapping.as_dict() == low

    def test_identical_designs_fall_back_to_first_member(self):
        same = {"P0": "N1"}
        members = [self._member(0, 5.0, same), self._member(1, 5.0, same)]
        assert _pick_winner(members) == 0

    def test_invalid_members_never_win(self):
        members = [
            self._member(0, float("inf"), {}, valid=False),
            self._member(1, 9.0, {"P0": "N1"}),
        ]
        assert _pick_winner(members) == 1

    def test_no_valid_member_means_no_winner(self):
        members = [self._member(0, float("inf"), {}, valid=False)]
        assert _pick_winner(members) is None


class TestFirstValid:
    class _Result:
        def __init__(self, valid):
            self.valid = valid

    def test_returns_first_valid(self):
        calls = []

        def attempt(k, valid):
            def run():
                calls.append(k)
                return self._Result(valid)

            return run

        result, attempts, reason = first_valid(
            [attempt(0, False), attempt(1, True), attempt(2, True)]
        )
        assert result.valid
        assert attempts == 2
        assert reason == "valid"
        assert calls == [0, 1]  # never runs past the first success

    def test_exhaustion(self):
        result, attempts, reason = first_valid(
            [lambda: self._Result(False)] * 3
        )
        assert result is None
        assert attempts == 3
        assert reason == "exhausted"

    def test_attempt_budget_caps_scan(self):
        result, attempts, reason = first_valid(
            [lambda: self._Result(False)] * 10,
            budget=Budget(max_steps=4),
        )
        assert result is None
        assert attempts == 4
        assert reason == "budget:steps"
