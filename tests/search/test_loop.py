"""SearchLoop semantics: legacy-trajectory equivalence and budget laws.

The refactor's core promise is that the kernel *is* the legacy loops:
frozen verbatim copies of the pre-refactor steepest descent and
Metropolis walk (as they lived in ``core.improvement`` and
``core.simulated_annealing`` before the search-kernel PR) are replayed
here against the kernel configurations, byte-identical designs and RNG
streams required.  Plus the budget laws the experiments layer relies
on: zero budgets return the start, and a strictly larger budget never
yields a worse incumbent (monotonicity, hypothesis-tested).
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from searchutil import identity, small_scenario, start_of

from repro.core.strategy import DesignEvaluator
from repro.search.acceptors import (
    AcceptAny,
    GreedyAcceptor,
    MetropolisAcceptor,
)
from repro.search.budget import Budget
from repro.search.loop import SearchLoop
from repro.search.proposers import (
    NeighbourhoodProposer,
    RandomMoveProposer,
    generate_moves,
    random_move,
)


# ----------------------------------------------------------------------
# frozen pre-refactor reference implementations
# ----------------------------------------------------------------------
def legacy_steepest_descent(
    spec,
    evaluator,
    start,
    pool_size=8,
    max_iterations=64,
    min_improvement=1e-9,
    use_message_moves=True,
):
    """The descent loop exactly as it was before the kernel refactor."""
    best = start
    for _ in range(max_iterations):
        moves = generate_moves(spec, best, pool_size, use_message_moves)
        winner = None
        for evaluated in evaluator.evaluate_moves(best, moves):
            if evaluated is None:
                continue
            target = winner.objective if winner is not None else best.objective
            if evaluated.objective < target - min_improvement:
                winner = evaluated
        if winner is None:
            break
        best = winner
    return best


def _legacy_accept(delta, temperature, rng):
    import math

    if delta <= 0:
        return True
    if temperature <= 0:
        return False
    return rng.random() < math.exp(-delta / temperature)


def legacy_sa_walk(
    spec,
    evaluator,
    start,
    rng,
    iterations,
    cooling=0.997,
    min_temperature=1e-3,
    probe_moves=24,
):
    """Calibration probe + Metropolis walk exactly as before the refactor."""
    current = start
    best = current

    deltas = []
    probe_current = current
    for _ in range(probe_moves):
        move = random_move(spec, probe_current, rng)
        if move is None:
            break
        proposal = evaluator.evaluate_move(probe_current, move)
        if proposal is None:
            continue
        deltas.append(abs(proposal.objective - probe_current.objective))
        probe_current = proposal
    if not deltas:
        temperature = 10.0
    else:
        temperature = max(1.0, 2.0 * float(np.mean(deltas)))

    for _ in range(iterations):
        move = random_move(spec, current, rng)
        if move is None:
            break
        proposal = evaluator.evaluate_move(current, move)
        if proposal is not None and _legacy_accept(
            proposal.objective - current.objective, temperature, rng
        ):
            current = proposal
            if current.objective < best.objective:
                best = current
        temperature = max(min_temperature, temperature * cooling)
    return best, current, temperature, rng.bit_generator.state


def kernel_sa_walk(
    spec,
    evaluator,
    start,
    rng,
    iterations,
    cooling=0.997,
    min_temperature=1e-3,
    probe_moves=24,
):
    """The same pipeline expressed as two kernel loops."""
    deltas = []

    def record(event):
        if event.accepted is not None:
            deltas.append(
                abs(event.accepted.objective - event.previous.objective)
            )

    SearchLoop(
        RandomMoveProposer(), AcceptAny(), Budget(max_steps=probe_moves)
    ).run(spec, evaluator, start=start, rng=rng, observer=record)
    if not deltas:
        temperature = 10.0
    else:
        temperature = max(1.0, 2.0 * float(np.mean(deltas)))

    acceptor = MetropolisAcceptor(temperature, cooling, min_temperature)
    outcome = SearchLoop(
        RandomMoveProposer(), acceptor, Budget(max_steps=iterations)
    ).run(spec, evaluator, start=start, rng=rng)
    return (
        outcome.incumbent,
        outcome.current,
        acceptor.temperature,
        rng.bit_generator.state,
    )


# ----------------------------------------------------------------------
# equivalence
# ----------------------------------------------------------------------
class TestLegacyEquivalence:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_descent_matches_legacy(self, seed):
        scenario = small_scenario(seed=3)
        spec = scenario.spec()
        pool_size = 4 + seed % 5
        with DesignEvaluator(spec) as legacy_eval:
            start = start_of(spec, legacy_eval)
            legacy = legacy_steepest_descent(
                spec, legacy_eval, start, pool_size=pool_size, max_iterations=8
            )
        with DesignEvaluator(spec) as kernel_eval:
            start = start_of(spec, kernel_eval)
            outcome = SearchLoop(
                NeighbourhoodProposer(pool_size=pool_size),
                GreedyAcceptor(),
                Budget(max_steps=8),
            ).run(spec, kernel_eval, start=start)
        assert identity(outcome.incumbent) == identity(legacy)

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_metropolis_walk_matches_legacy(self, seed):
        scenario = small_scenario(seed=3)
        spec = scenario.spec()
        with DesignEvaluator(spec) as legacy_eval:
            start = start_of(spec, legacy_eval)
            legacy_best, legacy_current, legacy_temp, legacy_rng = (
                legacy_sa_walk(
                    spec,
                    legacy_eval,
                    start,
                    np.random.default_rng(seed),
                    iterations=60,
                )
            )
        with DesignEvaluator(spec) as kernel_eval:
            start = start_of(spec, kernel_eval)
            kernel_best, kernel_current, kernel_temp, kernel_rng = (
                kernel_sa_walk(
                    spec,
                    kernel_eval,
                    start,
                    np.random.default_rng(seed),
                    iterations=60,
                )
            )
        # Incumbent, walk endpoint, cooled temperature AND the RNG
        # stream itself must be byte-identical.
        assert identity(kernel_best) == identity(legacy_best)
        assert identity(kernel_current) == identity(legacy_current)
        assert kernel_temp == legacy_temp
        assert kernel_rng == legacy_rng


# ----------------------------------------------------------------------
# budget laws
# ----------------------------------------------------------------------
class TestBudgetLaws:
    def test_zero_step_budget_returns_start(self, spec, evaluator, start):
        outcome = SearchLoop(
            NeighbourhoodProposer(), GreedyAcceptor(), Budget(max_steps=0)
        ).run(spec, evaluator, start=start)
        assert outcome.incumbent is start
        assert outcome.stats.stop_reason == "budget:steps"
        assert outcome.stats.evaluations == 0

    def test_zero_evaluation_budget_returns_start(self, spec, evaluator, start):
        outcome = SearchLoop(
            NeighbourhoodProposer(), GreedyAcceptor(), Budget(max_evaluations=0)
        ).run(spec, evaluator, start=start)
        assert outcome.incumbent is start
        assert outcome.stats.stop_reason == "budget:evaluations"

    def test_patience_cuts_stochastic_walk(self, spec, evaluator, start):
        acceptor = MetropolisAcceptor(temperature=1e-9)
        outcome = SearchLoop(
            RandomMoveProposer(),
            acceptor,
            Budget(max_steps=500, patience=5),
        ).run(spec, evaluator, start=start, rng=np.random.default_rng(0))
        assert outcome.stats.stop_reason in ("budget:patience", "budget:steps")
        # At ~zero temperature nearly everything is rejected, so the
        # patience axis (not the step cap) is what fires.
        assert outcome.stats.stop_reason == "budget:patience"

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        budgets=st.lists(
            st.integers(min_value=0, max_value=120),
            min_size=2,
            max_size=4,
            unique=True,
        ),
    )
    def test_metropolis_incumbent_monotone_in_step_budget(self, seed, budgets):
        """A strictly larger budget never yields a worse incumbent."""
        scenario = small_scenario(seed=3)
        spec = scenario.spec()
        objectives = []
        with DesignEvaluator(spec) as evaluator:
            start = start_of(spec, evaluator)
            for max_steps in sorted(budgets):
                outcome = SearchLoop(
                    RandomMoveProposer(),
                    MetropolisAcceptor(temperature=5.0),
                    Budget(max_steps=max_steps),
                ).run(
                    spec,
                    evaluator,
                    start=start,
                    rng=np.random.default_rng(seed),
                )
                objectives.append(outcome.incumbent.objective)
        for smaller, larger in zip(objectives, objectives[1:]):
            assert larger <= smaller

    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        budgets=st.lists(
            st.integers(min_value=0, max_value=400),
            min_size=2,
            max_size=3,
            unique=True,
        )
    )
    def test_mh_incumbent_monotone_in_evaluation_budget(self, budgets):
        """Strategy-level monotonicity via MH's external budget field."""
        from repro.core.mapping_heuristic import MappingHeuristic

        scenario = small_scenario(seed=3)
        spec = scenario.spec()
        objectives = []
        for max_evaluations in sorted(budgets):
            result = MappingHeuristic(
                budget=Budget(max_evaluations=max_evaluations)
            ).design(spec)
            assert result.valid
            objectives.append(result.objective)
        for smaller, larger in zip(objectives, objectives[1:]):
            assert larger <= smaller


class TestStats:
    def test_descent_stats_consistent(self, spec, evaluator, start):
        outcome = SearchLoop(
            NeighbourhoodProposer(), GreedyAcceptor(), Budget(max_steps=6)
        ).run(spec, evaluator, start=start)
        stats = outcome.stats
        assert stats.steps <= 6
        assert stats.accepted == stats.improvements
        assert stats.proposals == stats.evaluations
        assert stats.evaluations_to_incumbent <= stats.evaluations
        if outcome.incumbent is not start:
            assert stats.improvements > 0
        assert stats.stop_reason in ("budget:steps", "local-optimum")

    def test_observer_sees_every_step(self, spec, evaluator, start):
        events = []
        SearchLoop(
            RandomMoveProposer(),
            MetropolisAcceptor(temperature=5.0),
            Budget(max_steps=20),
        ).run(
            spec,
            evaluator,
            start=start,
            rng=np.random.default_rng(7),
            observer=events.append,
        )
        assert len(events) == 20
        assert [e.step for e in events] == list(range(1, 21))
