"""Checkpoint serialization and cut-plus-resume == uninterrupted."""

from __future__ import annotations

import numpy as np

from searchutil import identity, small_scenario, start_of

from repro.core.simulated_annealing import SimulatedAnnealing
from repro.core.strategy import DesignEvaluator
from repro.search.acceptors import GreedyAcceptor, MetropolisAcceptor
from repro.search.budget import Budget, StealRequested
from repro.search.checkpoint import MemberCheckpoint, MemberPaused, SearchCheckpoint
from repro.search.loop import SearchLoop, execute_request
from repro.search.proposers import NeighbourhoodProposer, RandomMoveProposer


def walk_loop(max_steps: int) -> SearchLoop:
    """A fresh Metropolis walk (fresh acceptor state per run)."""
    return SearchLoop(
        RandomMoveProposer(),
        MetropolisAcceptor(temperature=5.0, cooling=0.99),
        Budget(max_steps=max_steps),
        name="walk",
    )


class TestSerialization:
    def test_json_round_trip(self, spec, evaluator, start):
        outcome = walk_loop(30).run(
            spec, evaluator, start=start, rng=np.random.default_rng(11)
        )
        checkpoint = outcome.checkpoint
        rebuilt = SearchCheckpoint.from_json(checkpoint.to_json())
        assert rebuilt.to_dict() == checkpoint.to_dict()
        # The wire form is pure JSON: designs as dicts, RNG state as a
        # bit-generator state dict, acceptor state as floats.
        assert rebuilt.rng_state is not None
        assert "temperature" in rebuilt.acceptor_state
        assert rebuilt.steps == 30

    def test_checkpoint_tracks_budget_progress(self, spec, evaluator, start):
        outcome = walk_loop(25).run(
            spec, evaluator, start=start, rng=np.random.default_rng(5)
        )
        checkpoint = outcome.checkpoint
        assert checkpoint.steps == 25
        assert checkpoint.evaluations == outcome.stats.evaluations
        assert checkpoint.seconds > 0.0


class TestResume:
    def test_cut_and_resume_equals_uninterrupted_walk(self, spec):
        """40 steps + resume to 100 == straight 100-step run."""
        with DesignEvaluator(spec) as evaluator:
            start = start_of(spec, evaluator)
            straight = walk_loop(100).run(
                spec, evaluator, start=start, rng=np.random.default_rng(42)
            )
        with DesignEvaluator(spec) as evaluator:
            start = start_of(spec, evaluator)
            cut = walk_loop(40).run(
                spec, evaluator, start=start, rng=np.random.default_rng(42)
            )
            assert cut.stats.stop_reason == "budget:steps"
            # Ship the checkpoint through its JSON wire form, as a
            # cross-process resume would.
            wire = SearchCheckpoint.from_json(cut.checkpoint.to_json())
            resumed = walk_loop(100).resume(spec, evaluator, wire)
        assert resumed.stats.steps == 100
        assert identity(resumed.incumbent) == identity(straight.incumbent)
        assert identity(resumed.current) == identity(straight.current)
        assert (
            resumed.checkpoint.rng_state == straight.checkpoint.rng_state
        )
        assert (
            resumed.checkpoint.acceptor_state
            == straight.checkpoint.acceptor_state
        )

    def test_resume_into_fresh_engine(self, spec):
        """A checkpoint outlives the engine that produced it."""
        with DesignEvaluator(spec) as evaluator:
            start = start_of(spec, evaluator)
            cut = walk_loop(20).run(
                spec, evaluator, start=start, rng=np.random.default_rng(9)
            )
        with DesignEvaluator(spec) as fresh:
            resumed = walk_loop(45).resume(spec, fresh, cut.checkpoint)
        assert resumed.stats.steps == 45
        assert resumed.incumbent.objective <= cut.incumbent.objective

    def test_descent_resume_after_evaluation_cut(self, spec):
        """A budget-cut descent continues to the same local optimum."""
        with DesignEvaluator(spec) as evaluator:
            start = start_of(spec, evaluator)
            full = SearchLoop(
                NeighbourhoodProposer(), GreedyAcceptor(), None
            ).run(spec, evaluator, start=start)
        with DesignEvaluator(spec) as evaluator:
            start = start_of(spec, evaluator)
            cut = SearchLoop(
                NeighbourhoodProposer(),
                GreedyAcceptor(),
                Budget(max_evaluations=60),
            ).run(spec, evaluator, start=start)
            assert cut.stats.stop_reason == "budget:evaluations"
            resumed = SearchLoop(
                NeighbourhoodProposer(), GreedyAcceptor(), None
            ).resume(spec, evaluator, cut.checkpoint)
        assert resumed.stats.stop_reason == "local-optimum"
        assert identity(resumed.incumbent) == identity(full.incumbent)

    def test_cut_and_resume_through_sqlite_store(self, spec, tmp_path):
        """A fresh-process resume against a warm sqlite store replays
        the cut prefix from the database and lands byte-identical to an
        uninterrupted run."""
        path = str(tmp_path / "resume.sqlite")
        with DesignEvaluator(spec) as evaluator:
            start = start_of(spec, evaluator)
            straight = walk_loop(100).run(
                spec, evaluator, start=start, rng=np.random.default_rng(42)
            )
        with DesignEvaluator(
            spec, cache_store="sqlite", cache_path=path
        ) as evaluator:
            start = start_of(spec, evaluator)
            cut = walk_loop(40).run(
                spec, evaluator, start=start, rng=np.random.default_rng(42)
            )
            assert cut.stats.stop_reason == "budget:steps"
            wire = cut.checkpoint.to_json()
        # The resuming evaluator is brand new -- only the database file
        # survives, exactly like a process restart.
        with DesignEvaluator(
            spec, cache_store="sqlite", cache_path=path
        ) as fresh:
            resumed = walk_loop(100).resume(
                spec, fresh, SearchCheckpoint.from_json(wire)
            )
            assert fresh.store_hits > 0
        assert resumed.stats.steps == 100
        assert identity(resumed.incumbent) == identity(straight.incumbent)
        assert identity(resumed.current) == identity(straight.current)
        assert (
            resumed.checkpoint.rng_state == straight.checkpoint.rng_state
        )
        assert (
            resumed.checkpoint.acceptor_state
            == straight.checkpoint.acceptor_state
        )

    def test_resume_rejects_mismatched_spec(self, spec, evaluator, start):
        import pytest

        from repro.utils.errors import MappingError

        cut = walk_loop(10).run(
            spec, evaluator, start=start, rng=np.random.default_rng(3)
        )
        other = small_scenario(seed=8).spec()
        with DesignEvaluator(other) as fresh:
            with pytest.raises((MappingError, ValueError, KeyError)):
                walk_loop(20).resume(other, fresh, cut.checkpoint)


class TestRestoreRng:
    def test_restored_stream_is_exactly_the_checkpointed_one(self):
        # Regression pin for the determinism fix in _restore_rng: the
        # bootstrap generator is seeded (no OS-entropy draw) and its
        # state is fully replaced, so resuming with rng=None continues
        # the checkpointed stream bit-for-bit.
        from repro.search.loop import _restore_rng

        source = np.random.default_rng(42)
        source.random(17)  # advance mid-stream
        state = source.bit_generator.state
        expected = np.random.default_rng(42)
        expected.random(17)

        restored = _restore_rng(None, state)
        assert restored.bit_generator.state == state
        assert list(restored.random(8)) == list(expected.random(8))

    def test_restore_is_repeatable(self):
        from repro.search.loop import _restore_rng

        state = np.random.default_rng(7).bit_generator.state
        a = _restore_rng(None, state).random(8)
        b = _restore_rng(None, state).random(8)
        assert list(a) == list(b)


def cut_sa_at(spec, cut_at: int) -> MemberCheckpoint:
    """Steal-cut an SA pipeline at its ``cut_at``-th move request."""
    with DesignEvaluator(spec) as evaluator:
        program = SimulatedAnnealing(iterations=60, seed=7).search_program(
            spec, evaluator.compiled
        )
        request = next(program)
        moves_seen = 0
        try:
            while True:
                if request.moves is not None:
                    moves_seen += 1
                    if moves_seen == cut_at:
                        request = program.throw(StealRequested())
                        continue
                request = program.send(execute_request(evaluator, request))
        except MemberPaused as pause:
            return pause.checkpoint
    raise AssertionError("program finished before the cut")


class TestMemberCheckpointWire:
    """The steal protocol's wire form: JSON-safe and O(state)-sized."""

    def test_json_round_trip(self, spec):
        checkpoint = cut_sa_at(spec, 30)
        rebuilt = MemberCheckpoint.from_json(checkpoint.to_json())
        assert rebuilt.to_dict() == checkpoint.to_dict()
        assert rebuilt.phase == "walk"
        assert rebuilt.strategy == "SA"
        assert rebuilt.loop.rng_state is not None

    def test_wire_size_is_state_not_history(self, spec):
        # Size regression pin for the once-per-steal serialization
        # contract: a cut late in the walk carries the same payload --
        # two designs, one RNG state, a few counters -- as an early
        # cut.  O(history) leakage (trace accumulation, per-step logs)
        # would show up as growth with the cut position.
        early = len(cut_sa_at(spec, 35).to_json())
        late = len(cut_sa_at(spec, 75).to_json())
        assert late < 32 * 1024
        assert abs(late - early) <= 0.2 * max(early, late)
