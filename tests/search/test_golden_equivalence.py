"""Byte-identical seeded equivalence with the pre-refactor strategies.

``golden_designs.json`` was generated from the repository state
*before* the search-kernel refactor (the hand-rolled loops of PR 3):
for every registered scenario family's smallest preset at seed 1, the
full design identity -- mapping, priorities, message delays, objective
``repr`` and even the engine evaluation count -- of AH, MH and SA
(150 iterations, the smoke budget).  The kernel-backed strategies must
reproduce every cell exactly; any intentional change to search
behavior must regenerate the goldens and say so in the diff.

The delta-on/off and jobs equivalence for every family is covered by
``run_family_smoke`` (the CI `scenarios smoke` gate); here one family
re-checks both axes against the golden record itself so the tier-1
suite alone pins the full contract end-to-end.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.runner import strategy_for_family
from repro.gen import families

GOLDEN_PATH = Path(__file__).resolve().parent / "golden_designs.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())
STRATEGIES = ("AH", "MH", "SA")

#: The family whose golden cell is additionally re-checked with the
#: delta kernel off and with two evaluation workers.
CROSS_MODE_FAMILY = "uniform-baseline"


def observed_identity(result) -> dict:
    return {
        "mapping": dict(sorted(result.mapping.as_dict().items())),
        "priorities": {
            k: repr(v) for k, v in sorted(result.priorities.items())
        },
        "message_delays": dict(
            sorted((result.message_delays or {}).items())
        ),
        "objective": repr(result.objective),
        "evaluations": result.evaluations,
    }


def golden_cell(family_name: str):
    family = families.get_family(family_name)
    key = f"{family_name}/{family.smallest_preset}/seed{GOLDEN['seed']}"
    return family, GOLDEN["designs"][key]


@pytest.fixture(scope="module")
def specs():
    """One built scenario spec per family (shared across strategies)."""
    built = {}
    for name in families.family_names():
        family = families.get_family(name)
        built[name] = family.build(
            family.smallest_preset, seed=GOLDEN["seed"]
        ).spec()
    return built


@pytest.mark.parametrize("family_name", families.family_names())
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_matches_pre_refactor_design(specs, family_name, strategy):
    family, cell = golden_cell(family_name)
    result = strategy_for_family(
        strategy, GOLDEN["seed"], True, 1, GOLDEN["sa_iterations"]
    ).design(specs[family_name])
    assert result.valid
    assert observed_identity(result) == cell[strategy]


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize(
    "label,jobs,use_delta", [("delta-off", 1, False), ("jobs-2", 2, True)]
)
def test_golden_holds_across_engine_modes(
    specs, strategy, label, jobs, use_delta
):
    _, cell = golden_cell(CROSS_MODE_FAMILY)
    result = strategy_for_family(
        strategy,
        GOLDEN["seed"],
        True,
        jobs,
        GOLDEN["sa_iterations"],
        use_delta,
    ).design(specs[CROSS_MODE_FAMILY])
    assert result.valid
    assert observed_identity(result) == cell[strategy]
