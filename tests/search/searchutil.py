"""Shared helpers for the search-kernel tests (imported by name)."""

from __future__ import annotations

from repro.core.initial_mapping import InitialMapper
from repro.core.transformations import CandidateDesign
from repro.gen.scenario import ScenarioParams, build_scenario


def small_scenario(seed: int = 3):
    """One laptop-instant scenario with a non-trivial neighbourhood."""
    params = ScenarioParams(
        n_nodes=3, hyperperiod=2400, n_existing=18, n_current=10
    )
    return build_scenario(params, seed=seed)


def start_of(spec, evaluator):
    """The Initial Mapping design, evaluated (every search's start)."""
    mapper = InitialMapper(spec.architecture)
    outcome = mapper.try_map_and_schedule(
        spec.current, base=spec.base_schedule, compiled=evaluator.compiled
    )
    assert outcome is not None
    start = evaluator.evaluate(
        CandidateDesign(outcome[0], dict(evaluator.compiled.default_priorities))
    )
    assert start is not None
    return start


def identity(evaluated):
    """Byte-comparison identity of one evaluated design."""
    return (
        tuple(sorted(evaluated.mapping.as_dict().items())),
        tuple(sorted(evaluated.priorities.items())),
        tuple(sorted(evaluated.design.message_delays.items())),
        evaluated.objective,
    )
