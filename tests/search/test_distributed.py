"""Distributed racing: steal/resume identity, churn, failure, budgets."""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import pytest

from searchutil import small_scenario

from repro.core.adhoc import AdHocStrategy
from repro.core.mapping_heuristic import MappingHeuristic
from repro.core.simulated_annealing import SimulatedAnnealing
from repro.core.strategy import DesignEvaluator
from repro.search.budget import Budget, StealRequested
from repro.search.checkpoint import MemberCheckpoint, MemberPaused
from repro.search.distributed import DistributedPortfolioRunner
from repro.search.loop import drive, execute_request
from repro.search.portfolio import PortfolioRunner

SA_ITERS = 60


@pytest.fixture(scope="module")
def spec():
    return small_scenario(seed=3).spec()


def sa(seed: int = 7, iterations: int = SA_ITERS) -> SimulatedAnnealing:
    return SimulatedAnnealing(iterations=iterations, seed=seed)


def members() -> list:
    return [AdHocStrategy(), MappingHeuristic(), sa(7), sa(11, 80)]


def result_key(result) -> tuple:
    """Everything the lockstep/distributed comparison must preserve."""
    return (
        result.winner.name if result.winner else None,
        result.best.design_identity() if result.best else None,
        tuple(
            (m.name, m.evaluations_served, m.objective) for m in result.members
        ),
        result.budget_cut,
    )


def event_kinds(result) -> dict:
    kinds: dict = {}
    for event in result.events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    return kinds


# ----------------------------------------------------------------------
# in-process pause/resume protocol (no worker processes)
# ----------------------------------------------------------------------
def run_uncut(strategy, spec):
    with DesignEvaluator(spec) as evaluator:
        return drive(strategy.search_program(spec, evaluator.compiled), evaluator)


def run_cut_at(strategy, spec, cut_at: int):
    """Steal at the ``cut_at``-th move request, reship as JSON, resume."""
    checkpoint = None
    with DesignEvaluator(spec) as evaluator:
        program = strategy.search_program(spec, evaluator.compiled)
        request = next(program)
        moves_seen = 0
        try:
            while True:
                if request.moves is not None:
                    moves_seen += 1
                    if moves_seen == cut_at:
                        request = program.throw(StealRequested())
                        continue
                request = program.send(execute_request(evaluator, request))
        except StopIteration as stop:
            return stop.value, None
        except MemberPaused as pause:
            checkpoint = pause.checkpoint
    wire = MemberCheckpoint.from_json(checkpoint.to_json())
    with DesignEvaluator(spec) as fresh:
        result = drive(
            strategy.search_program(spec, fresh.compiled, resume=wire), fresh
        )
    return result, wire.phase


def design_stats_key(result) -> tuple:
    stats = result.search.as_dict()
    stats.pop("seconds", None)
    return (result.design_identity(), result.objective, tuple(sorted(stats.items())))


class TestPauseResume:
    """The steal cut is invisible: cut + reship + resume == uninterrupted."""

    @pytest.mark.parametrize(
        "cut_at,phase",
        [(1, "probe"), (5, "probe"), (30, "walk"), (70, "walk"),
         (85, "polish"), (88, "polish-from-start")],
    )
    def test_sa_cut_anywhere_is_byte_identical(self, spec, cut_at, phase):
        reference = run_uncut(sa(), spec)
        result, cut_phase = run_cut_at(sa(), spec, cut_at)
        assert cut_phase == phase
        assert design_stats_key(result) == design_stats_key(reference)

    @pytest.mark.parametrize("cut_at", [1, 2, 3])
    def test_mh_cut_is_byte_identical(self, spec, cut_at):
        reference = run_uncut(MappingHeuristic(), spec)
        result, cut_phase = run_cut_at(MappingHeuristic(), spec, cut_at)
        assert cut_phase == "descent"
        assert design_stats_key(result) == design_stats_key(reference)

    def test_checkpoint_reports_strategy_and_phase(self, spec):
        with DesignEvaluator(spec) as evaluator:
            program = sa().search_program(spec, evaluator.compiled)
            request = next(program)
            with pytest.raises(MemberPaused) as caught:
                while True:
                    if request.moves is not None:
                        request = program.throw(StealRequested())
                        continue
                    request = program.send(execute_request(evaluator, request))
        checkpoint = caught.value.checkpoint
        assert checkpoint.strategy == "SA"
        assert checkpoint.phase == "probe"


# ----------------------------------------------------------------------
# sharded race == lockstep reference
# ----------------------------------------------------------------------
class TestShardedEquivalence:
    @pytest.mark.parametrize("shards", [1, 2])
    def test_free_race_matches_lockstep(self, spec, shards):
        reference = PortfolioRunner(members()).run(spec)
        result = DistributedPortfolioRunner(
            members(), shards=shards, checkpoint_every=100, race_timeout=120.0
        ).run(spec)
        assert result_key(result) == result_key(reference)
        assert result.shards == shards
        assert result.respawns == 0

    def test_metered_race_matches_lockstep(self, spec):
        budget = Budget(max_evaluations=200)
        reference = PortfolioRunner(members(), budget=budget).run(spec)
        result = DistributedPortfolioRunner(
            members(), budget=budget, shards=2, checkpoint_every=64,
            race_timeout=120.0,
        ).run(spec)
        assert reference.budget_cut
        assert result_key(result) == result_key(reference)

    def test_steal_schedule_replay(self, spec):
        reference = PortfolioRunner(members()).run(spec)
        result = DistributedPortfolioRunner(
            members(), shards=2, checkpoint_every=0, race_timeout=120.0,
            steal_schedule=[{"member": 2, "at": 20, "to": 0}],
        ).run(spec)
        assert result_key(result) == result_key(reference)
        steals = [e for e in result.events if e.kind == "steal"]
        assert [(e.shard, e.member) for e in steals] == [(0, 2)]

    def test_fleet_counters_merge(self, spec):
        result = DistributedPortfolioRunner(
            members(), shards=2, checkpoint_every=0, race_timeout=120.0
        ).run(spec)
        assert len(result.shard_counters) == 2
        assert result.evaluations == sum(
            c.evaluations for c in result.shard_counters
        )
        assert result.cache_hits == sum(
            c.cache_hits for c in result.shard_counters
        )
        assert all(busy >= 0.0 for busy in result.shard_busy_seconds)

    def test_rejects_bad_configurations(self, spec):
        with pytest.raises(ValueError, match="wall-clock"):
            DistributedPortfolioRunner(
                members(), budget=Budget(max_seconds=1.0), shards=2
            )
        with pytest.raises(ValueError, match="elastic_plan"):
            DistributedPortfolioRunner(
                members(), shards=2,
                elastic_plan=[{"after_done": 1, "action": "add"}],
            )
        with pytest.raises(ValueError, match="'to'"):
            DistributedPortfolioRunner(
                members(), shards=2,
                steal_schedule=[{"member": 1, "at": 5}],
            )
        with pytest.raises(ValueError, match="elastic_plan"):
            DistributedPortfolioRunner(
                members(), shards=2, mode="elastic",
                elastic_plan=[{"after_done": 1, "action": "explode"}],
            )


# ----------------------------------------------------------------------
# elastic churn: workers added and removed mid-race
# ----------------------------------------------------------------------
class TestElasticChurn:
    def test_add_and_remove_workers_mid_race(self, spec):
        reference = PortfolioRunner(members()).run(spec)
        result = DistributedPortfolioRunner(
            members(), shards=2, mode="elastic", checkpoint_every=50,
            race_timeout=120.0,
            elastic_plan=[
                {"after_done": 1, "action": "add"},
                {"after_done": 2, "action": "remove", "shard": 0},
            ],
        ).run(spec)
        assert result_key(result) == result_key(reference)
        kinds = event_kinds(result)
        assert kinds.get("add") == 1
        assert kinds.get("remove") == 1
        assert kinds.get("steal", 0) >= 1  # the drained shard's members moved

    def test_idle_shard_steals_work(self, spec):
        # Three shards, four members: AH finishes instantly, so at
        # least one shard starves and must steal a running member.
        reference = PortfolioRunner(members()).run(spec)
        result = DistributedPortfolioRunner(
            members(), shards=3, mode="elastic", checkpoint_every=50,
            race_timeout=120.0,
        ).run(spec)
        assert result_key(result) == result_key(reference)


# ----------------------------------------------------------------------
# failure injection: a shard dies mid-race, its members respawn
# ----------------------------------------------------------------------
@dataclass
class CrashOnce:
    """Delegates to an inner strategy; kills its worker process at the
    ``crash_at``-th move request -- once.  The sentinel file is touched
    just before dying so the respawned attempt runs clean."""

    inner: SimulatedAnnealing
    crash_at: int
    sentinel: str
    hard: bool = True  # os._exit vs raised exception

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def resumable(self) -> bool:
        return True

    def search_program(self, spec, compiled, resume=None):
        program = self.inner.search_program(spec, compiled, resume=resume)
        request = next(program)
        while True:
            if request.moves is not None and not request.bookkeeping:
                # Counted on the instance, not the generator: periodic
                # checkpointing cuts and re-instantiates the program
                # mid-race, and the crash must still land eventually.
                self.count = getattr(self, "count", 0) + 1
                if self.count == self.crash_at and not os.path.exists(self.sentinel):
                    Path(self.sentinel).touch()
                    if self.hard:
                        os._exit(1)
                    raise RuntimeError("injected shard failure")
            try:
                results = yield request
            except StealRequested as steal:
                request = program.throw(steal)  # MemberPaused propagates
                continue
            try:
                request = program.send(results)
            except StopIteration as stop:
                return stop.value


class TestFailureInjection:
    @pytest.mark.parametrize("hard", [True, False], ids=["os-exit", "raise"])
    def test_dead_shard_respawns_from_checkpoint(self, spec, tmp_path, hard):
        sentinel = str(tmp_path / "crashed")
        crashers = [
            AdHocStrategy(),
            MappingHeuristic(),
            CrashOnce(sa(7), crash_at=35, sentinel=sentinel, hard=hard),
            sa(11, 80),
        ]
        reference = PortfolioRunner(members()).run(spec)
        result = DistributedPortfolioRunner(
            crashers, shards=2, checkpoint_every=20, race_timeout=120.0
        ).run(spec)
        assert os.path.exists(sentinel)
        assert result.respawns >= 1
        kinds = event_kinds(result)
        assert kinds.get("dead", 0) >= 1
        assert kinds.get("respawn", 0) >= 1
        # The crash is invisible to the race outcome: the respawned
        # member resumes from its checkpoint and lands byte-identical
        # to the never-crashed lockstep reference -- including its
        # exact evaluations_served accounting (the dead attempt's
        # un-checkpointed work is refunded, then re-charged).
        assert result_key(result) == result_key(reference)

    def test_metered_crash_conserves_budget(self, spec, tmp_path):
        sentinel = str(tmp_path / "crashed")
        crashers = [
            AdHocStrategy(),
            MappingHeuristic(),
            CrashOnce(sa(7), crash_at=35, sentinel=sentinel),
            sa(11, 80),
        ]
        budget = Budget(max_evaluations=200)
        result = DistributedPortfolioRunner(
            crashers, budget=budget, shards=2, checkpoint_every=20,
            race_timeout=120.0,
        ).run(spec)
        assert result.respawns >= 1
        # Grants never overshoot, and a dead shard's un-checkpointed
        # work is refunded before its members re-charge it: the ledger
        # stays exact despite the crash.
        charged = sum(m.evaluations_served for m in result.members)
        assert 0 < charged <= 200
        assert result.budget_cut

    def test_respawn_limit_fails_member_not_race(self, spec, tmp_path):
        # A member that crashes on every attempt (sentinel never helps:
        # crash_at=1 and we delete the sentinel path trick by pointing
        # it into a directory that cannot exist as a file check target).
        sentinel = str(tmp_path / "never" / "exists")  # touch() fails -> crash every time
        crashers = [
            AdHocStrategy(),
            CrashOnce(sa(7), crash_at=1, sentinel=sentinel),
        ]
        result = DistributedPortfolioRunner(
            crashers, shards=2, checkpoint_every=0, respawn_limit=2,
            race_timeout=120.0,
        ).run(spec)
        kinds = event_kinds(result)
        assert kinds.get("failed", 0) == 1
        failed = result.members[1]
        assert not failed.result.valid
        # The healthy member still wins the race.
        assert result.winner is not None
        assert result.winner.name == "AH"


# ----------------------------------------------------------------------
# sqlite store: workers read-only, parent is the single writer
# ----------------------------------------------------------------------
class TestSqliteStore:
    def test_single_writer_and_warm_reuse(self, spec, tmp_path):
        path = str(tmp_path / "results.sqlite")
        cold = DistributedPortfolioRunner(
            members(), shards=2, checkpoint_every=0, race_timeout=120.0,
            cache_store="sqlite", cache_path=path,
        ).run(spec)
        assert cold.store_writes > 0
        warm = DistributedPortfolioRunner(
            members(), shards=2, checkpoint_every=0, race_timeout=120.0,
            cache_store="sqlite", cache_path=path,
        ).run(spec)
        assert warm.store_hits > 0
        assert result_key(warm) == result_key(cold)
