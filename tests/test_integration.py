"""End-to-end integration tests across the whole library."""

import pytest

from repro import (
    ScenarioParams,
    build_scenario,
    design_application,
    evaluate_design,
    fits_future_application,
    generate_future_application,
    render_gantt,
)
from repro.core.strategy import DesignSpec
from repro.serialize import schedule_from_dict, schedule_to_dict
from repro.utils.intervals import Interval


@pytest.fixture(scope="module")
def scenario():
    params = ScenarioParams(n_nodes=4, hyperperiod=2400,
                            n_existing=20, n_current=10)
    return build_scenario(params, seed=13)


@pytest.fixture(scope="module")
def designs(scenario):
    return {
        "AH": design_application(scenario.spec(), "AH"),
        "MH": design_application(
            scenario.spec(), "MH", max_iterations=16
        ),
        "SA": design_application(
            scenario.spec(), "SA", iterations=120, seed=3
        ),
    }


class TestFullFlow:
    def test_all_strategies_valid(self, designs):
        for result in designs.values():
            assert result.valid

    def test_quality_ordering(self, designs):
        """SA <= MH <= AH on the shared scenario (SA dominates MH by
        construction; MH improves on AH's IM-only design)."""
        assert designs["SA"].objective <= designs["MH"].objective + 1e-9
        assert designs["MH"].objective <= designs["AH"].objective + 1e-9

    def test_existing_untouched_by_every_strategy(self, scenario, designs):
        base_entries = {
            (e.process_id, e.instance): e
            for e in scenario.base_schedule.all_entries()
        }
        for result in designs.values():
            for key, old in base_entries.items():
                new = result.schedule.entry_of(*key)
                assert new is not None
                assert (new.node_id, new.start, new.end) == (
                    old.node_id,
                    old.start,
                    old.end,
                )

    def test_current_app_fully_scheduled(self, scenario, designs):
        horizon = scenario.params.hyperperiod
        for result in designs.values():
            for graph in scenario.current.graphs:
                for k in range(horizon // graph.period):
                    for proc in graph.processes:
                        entry = result.schedule.entry_of(proc.id, k)
                        assert entry is not None
                        assert entry.end <= k * graph.period + graph.deadline

    def test_precedence_respected_everywhere(self, scenario, designs):
        """Every message's receiver starts after the sender finishes
        (plus bus latency when crossing nodes)."""
        for result in designs.values():
            schedule = result.schedule
            for graph in scenario.current.graphs:
                for k in range(schedule.horizon // graph.period):
                    for msg in graph.messages:
                        src = schedule.entry_of(msg.src, k)
                        dst = schedule.entry_of(msg.dst, k)
                        if src.node_id == dst.node_id:
                            assert dst.start >= src.end
                        else:
                            occ = schedule.bus.occupancy_of(msg.id, k)
                            assert occ is not None
                            window = schedule.bus.bus.occurrence_window(
                                occ.node_id, occ.round_index
                            )
                            assert window.start >= src.end
                            assert dst.start >= window.end

    def test_metrics_recomputable_from_schedule(self, scenario, designs):
        for result in designs.values():
            again = evaluate_design(result.schedule, scenario.future)
            assert again.objective == pytest.approx(result.objective)

    def test_schedule_survives_serialization(self, designs):
        payload = schedule_to_dict(designs["MH"].schedule)
        rebuilt = schedule_from_dict(payload)
        rebuilt.validate()

    def test_gantt_renders_all_designs(self, designs):
        for result in designs.values():
            out = render_gantt(result.schedule)
            assert "bus" in out


class TestFutureFlow:
    def test_future_fit_is_monotone_in_demand(self, scenario, designs):
        """If a big future application fits, a smaller one (prefix of
        the same structure) also fits."""
        fut_small = generate_future_application(scenario, 3, rng=0)
        fut_big = generate_future_application(scenario, 12, rng=0)
        sched = designs["MH"].schedule
        if fits_future_application(sched, fut_big, scenario.architecture):
            assert fits_future_application(
                sched, fut_small, scenario.architecture
            )

    def test_future_fit_leaves_schedule_unchanged(self, scenario, designs):
        sched = designs["MH"].schedule
        before = len(list(sched.all_entries()))
        generate_future_application(scenario, 5, rng=1)
        fits_future_application(
            sched,
            generate_future_application(scenario, 5, rng=1),
            scenario.architecture,
        )
        assert len(list(sched.all_entries())) == before


class TestGreenFieldDesign:
    def test_design_without_base_schedule(self, scenario):
        """A spec with no existing applications is a green-field design."""
        spec = DesignSpec(
            architecture=scenario.architecture,
            current=scenario.current,
            future=scenario.future,
            horizon=scenario.params.hyperperiod,
        )
        result = design_application(spec, "MH", max_iterations=6)
        assert result.valid
        assert not any(e.frozen for e in result.schedule.all_entries())


class TestSlackAccounting:
    def test_slack_plus_busy_equals_horizon(self, designs):
        for result in designs.values():
            schedule = result.schedule
            for node_id in schedule.architecture.node_ids:
                busy = schedule.busy_set(node_id).total_length
                assert busy + schedule.total_slack(node_id) == schedule.horizon

    def test_window_slack_sums_to_total(self, designs, scenario):
        schedule = designs["MH"].schedule
        t_min = scenario.future.t_min
        for node_id in schedule.architecture.node_ids:
            per_window = [
                schedule.slack_within(node_id, Interval(s, s + t_min))
                for s in range(0, schedule.horizon, t_min)
            ]
            assert sum(per_window) == schedule.total_slack(node_id)
