"""Cross-module invariants tying the analysis tools to real schedules.

The ASAP/ALAP bounds, the analysis reports and the verifier must agree
with what the scheduler actually produces.
"""

import pytest

from repro.analysis import analyze_design
from repro.core.initial_mapping import InitialMapper
from repro.gen.scenario import ScenarioParams, build_scenario
from repro.sched.asap_alap import asap_schedule, time_bounds
from repro.sched.verify import verify_design


@pytest.fixture(scope="module")
def designed_scenario():
    scenario = build_scenario(
        ScenarioParams(n_nodes=4, hyperperiod=2400,
                       n_existing=16, n_current=10),
        seed=21,
    )
    mapper = InitialMapper(scenario.architecture)
    outcome = mapper.try_map_and_schedule(
        scenario.current, base=scenario.base_schedule
    )
    assert outcome is not None
    mapping, schedule = outcome
    return scenario, mapping, schedule


class TestAsapIsALowerBound:
    def test_actual_starts_respect_asap(self, designed_scenario):
        """No scheduled instance starts before its contention-free
        ASAP bound (shifted by the instance release)."""
        scenario, mapping, schedule = designed_scenario
        for graph in scenario.current.graphs:
            asap = asap_schedule(graph, mapping, scenario.architecture.bus)
            for k in range(schedule.horizon // graph.period):
                release = k * graph.period
                for proc in graph.processes:
                    entry = schedule.entry_of(proc.id, k)
                    assert entry.start >= release + asap[proc.id]

    def test_bounds_are_consistent_for_valid_design(self, designed_scenario):
        """A valid schedule implies ASAP <= ALAP for every process."""
        scenario, mapping, schedule = designed_scenario
        for graph in scenario.current.graphs:
            bounds = time_bounds(graph, mapping, scenario.architecture.bus)
            for b in bounds.values():
                assert b.asap <= b.alap


class TestAnalysisAgreesWithSchedule:
    def test_worst_response_below_deadline(self, designed_scenario):
        scenario, _, schedule = designed_scenario
        report = analyze_design(
            schedule, [scenario.existing, scenario.current], scenario.future
        )
        for graph_report in report.graphs:
            assert graph_report.laxity >= 0

    def test_node_utilizations_sum_to_busy_time(self, designed_scenario):
        scenario, _, schedule = designed_scenario
        report = analyze_design(schedule, [scenario.existing, scenario.current])
        for node in report.nodes:
            busy = schedule.busy_set(node.node_id).total_length
            assert node.utilization == pytest.approx(busy / schedule.horizon)
            assert node.total_slack == schedule.horizon - busy

    def test_metrics_match_direct_evaluation(self, designed_scenario):
        from repro.core.metrics import evaluate_design

        scenario, _, schedule = designed_scenario
        report = analyze_design(
            schedule, [scenario.existing, scenario.current], scenario.future
        )
        direct = evaluate_design(schedule, scenario.future)
        assert report.metrics == direct


class TestVerifierAcceptsAllStrategyOutputs:
    @pytest.mark.parametrize("strategy,kwargs", [
        ("AH", {}),
        ("MH", {"max_iterations": 6}),
        ("SA", {"iterations": 60, "seed": 2}),
    ])
    def test_every_strategy_output_verifies(self, designed_scenario, strategy, kwargs):
        from repro.core.strategy import make_strategy

        scenario, _, _ = designed_scenario
        result = make_strategy(strategy, **kwargs).design(scenario.spec())
        assert result.valid
        verify_design(
            result.schedule,
            [scenario.existing, scenario.current],
            {scenario.current.name: result.mapping},
        )
