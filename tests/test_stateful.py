"""Stateful (model-based) property tests for the mutable cores.

Hypothesis drives random operation sequences against the two mutable
data structures everything else is built on -- the interval set (busy
time / slack) and the bus schedule (slot occupancy) -- comparing them
against trivially correct reference models.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.tdma.bus import Slot, TdmaBus
from repro.tdma.schedule import BusSchedule
from repro.utils.errors import SchedulingError
from repro.utils.intervals import Interval, IntervalSet

HORIZON = 120


class IntervalSetMachine(RuleBasedStateMachine):
    """IntervalSet vs a boolean-array reference model."""

    def __init__(self):
        super().__init__()
        self.model = [False] * HORIZON
        self.real = IntervalSet()

    @rule(start=st.integers(0, HORIZON - 1), length=st.integers(1, 25))
    def add(self, start, length):
        end = min(start + length, HORIZON)
        self.real.add(Interval(start, end))
        for t in range(start, end):
            self.model[t] = True

    @rule(start=st.integers(0, HORIZON - 1), length=st.integers(1, 25))
    def add_busy_checked(self, start, length):
        end = min(start + length, HORIZON)
        overlaps = any(self.model[start:end])
        if overlaps:
            try:
                self.real.add_busy(Interval(start, end))
                raise AssertionError("add_busy accepted an overlap")
            except ValueError:
                pass
        else:
            self.real.add_busy(Interval(start, end))
            for t in range(start, end):
                self.model[t] = True

    @invariant()
    def total_length_matches(self):
        assert self.real.total_length == sum(self.model)

    @invariant()
    def point_membership_matches(self):
        for t in range(0, HORIZON, 7):
            assert self.real.contains_point(t) == self.model[t]

    @invariant()
    def complement_is_exact(self):
        slack = self.real.complement(Interval(0, HORIZON))
        for gap in slack:
            assert not any(self.model[gap.start : gap.end])
        assert slack.total_length == HORIZON - sum(self.model)

    @invariant()
    def canonical_form(self):
        intervals = self.real.intervals()
        for prev, cur in zip(intervals, intervals[1:]):
            assert prev.end < cur.start  # disjoint and non-adjacent


class BusScheduleMachine(RuleBasedStateMachine):
    """BusSchedule vs a per-occurrence byte-count reference model."""

    def __init__(self):
        super().__init__()
        self.bus = TdmaBus([Slot("A", 3, 10), Slot("B", 5, 6)])
        self.sched = BusSchedule(self.bus, horizon=80)  # 10 rounds
        self.model = {}  # (node, round) -> used bytes
        self.placed = {}  # (msg, instance) -> (node, round, size)
        self.counter = 0

    @rule(
        node=st.sampled_from(["A", "B"]),
        round_index=st.integers(0, 9),
        size=st.integers(1, 12),
    )
    def place(self, node, round_index, size):
        capacity = self.bus.slot_of(node).capacity
        used = self.model.get((node, round_index), 0)
        msg_id = f"m{self.counter}"
        self.counter += 1
        if used + size > capacity:
            try:
                self.sched.place(msg_id, 0, node, round_index, size)
                raise AssertionError("place accepted an overfull slot")
            except SchedulingError:
                pass
        else:
            self.sched.place(msg_id, 0, node, round_index, size)
            self.model[(node, round_index)] = used + size
            self.placed[(msg_id, 0)] = (node, round_index, size)

    @precondition(lambda self: self.placed)
    @rule(data=st.data())
    def remove(self, data):
        key = data.draw(st.sampled_from(sorted(self.placed)))
        node, round_index, size = self.placed.pop(key)
        self.sched.remove(*key)
        self.model[(node, round_index)] -= size

    @invariant()
    def used_bytes_match(self):
        for (node, r), used in self.model.items():
            assert self.sched.used_bytes(node, r) == used

    @invariant()
    def total_free_matches(self):
        capacity = 10 * (10 + 6)
        assert self.sched.total_free_bytes() == capacity - sum(
            self.model.values()
        )

    @invariant()
    def earliest_round_is_correct(self):
        """earliest_round_with_room agrees with a linear reference scan."""
        for node, size in (("A", 4), ("B", 6)):
            got = self.sched.earliest_round_with_room(node, size, 0)
            capacity = self.bus.slot_of(node).capacity
            expected = None
            for r in range(10):
                if capacity - self.model.get((node, r), 0) >= size:
                    expected = r
                    break
            assert got == expected


TestIntervalSetStateful = IntervalSetMachine.TestCase
TestIntervalSetStateful.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)

TestBusScheduleStateful = BusScheduleMachine.TestCase
TestBusScheduleStateful.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
