"""Shared fixtures: tiny platforms and applications used across tests."""

from __future__ import annotations

import pytest

from repro.model.application import Application
from repro.model.architecture import Architecture, Node
from repro.model.mapping import Mapping
from repro.model.process_graph import Message, Process, ProcessGraph
from repro.tdma.bus import Slot, TdmaBus


@pytest.fixture
def arch2() -> Architecture:
    """Two nodes, slots of 4 tu / 8 bytes (round length 8)."""
    return Architecture(
        [Node("N1"), Node("N2")],
        TdmaBus([Slot("N1", 4, 8), Slot("N2", 4, 8)]),
    )


@pytest.fixture
def arch3() -> Architecture:
    """Three nodes with unequal slots (round length 12)."""
    return Architecture(
        [Node("N1"), Node("N2"), Node("N3")],
        TdmaBus([Slot("N1", 2, 4), Slot("N2", 4, 8), Slot("N3", 6, 12)]),
    )


def make_chain_graph(
    name: str = "g0",
    period: int = 80,
    deadline=None,
    wcets=(8, 9, 6),
    msg_size: int = 4,
    nodes=("N1", "N2"),
    prefix: str = "",
) -> ProcessGraph:
    """A linear chain P0 -> P1 -> ... with uniform WCETs per node."""
    graph = ProcessGraph(name, period, deadline)
    ids = []
    for i, w in enumerate(wcets):
        pid = f"{prefix}P{i}"
        graph.add_process(Process(pid, {n: w for n in nodes}))
        ids.append(pid)
    for i in range(len(ids) - 1):
        graph.add_message(Message(f"{prefix}m{i}", ids[i], ids[i + 1], msg_size))
    return graph


def make_fork_join_graph(
    name: str = "g0",
    period: int = 80,
    deadline=None,
    nodes=("N1", "N2"),
    prefix: str = "",
) -> ProcessGraph:
    """The slide-5 shape: P0 -> {P1, P2} -> P3."""
    graph = ProcessGraph(name, period, deadline)
    for i, w in enumerate((8, 9, 10, 6)):
        graph.add_process(Process(f"{prefix}P{i}", {n: w for n in nodes}))
    graph.add_message(Message(f"{prefix}m0", f"{prefix}P0", f"{prefix}P1", 4))
    graph.add_message(Message(f"{prefix}m1", f"{prefix}P0", f"{prefix}P2", 4))
    graph.add_message(Message(f"{prefix}m2", f"{prefix}P1", f"{prefix}P3", 4))
    graph.add_message(Message(f"{prefix}m3", f"{prefix}P2", f"{prefix}P3", 4))
    return graph


@pytest.fixture
def chain_app() -> Application:
    """Single chain graph on nodes N1/N2, period 80."""
    return Application("app", [make_chain_graph()])


@pytest.fixture
def fork_join_app() -> Application:
    """Single fork-join graph on nodes N1/N2, period 80."""
    return Application("app", [make_fork_join_graph()])


@pytest.fixture
def chain_mapping(chain_app, arch2) -> Mapping:
    """All chain processes on N1."""
    return Mapping(
        chain_app, arch2, {p.id: "N1" for p in chain_app.processes}
    )
