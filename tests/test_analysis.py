"""Tests for the design-analysis report module."""

import pytest

from repro.analysis import analyze_design, render_report
from repro.model.application import Application
from repro.model.mapping import Mapping
from repro.sched.list_scheduler import ListScheduler
from repro.sched.schedule import SystemSchedule
from repro.utils.errors import SchedulingError

from tests.conftest import make_chain_graph


@pytest.fixture
def designed(arch2):
    app = Application("a", [make_chain_graph(period=40)])
    mapping = Mapping(app, arch2, {"P0": "N1", "P1": "N2", "P2": "N2"})
    schedule = ListScheduler(arch2).schedule(app, mapping, horizon=80)
    return schedule, app


class TestNodeReports:
    def test_utilization_and_slack(self, designed):
        schedule, app = designed
        report = analyze_design(schedule, [app])
        by_id = {n.node_id: n for n in report.nodes}
        # N1 runs P0 twice (8 tu each) over 80 tu.
        assert by_id["N1"].utilization == pytest.approx(16 / 80)
        assert by_id["N1"].total_slack == 64
        assert 0.0 <= by_id["N1"].fragmentation <= 1.0

    def test_all_nodes_reported(self, designed):
        schedule, app = designed
        report = analyze_design(schedule, [app])
        assert {n.node_id for n in report.nodes} == {"N1", "N2"}


class TestGraphReports:
    def test_response_and_laxity(self, designed):
        schedule, app = designed
        report = analyze_design(schedule, [app])
        (graph_report,) = report.graphs
        assert graph_report.instances == 2
        # Worst response equals the makespan of the worse instance.
        worst = max(
            schedule.entry_of("P2", k).end - 40 * k for k in (0, 1)
        )
        assert graph_report.worst_response == worst
        assert graph_report.laxity == 40 - worst
        assert graph_report.laxity >= 0  # valid design

    def test_incomplete_design_rejected(self, arch2):
        app = Application("a", [make_chain_graph(period=80)])
        empty = SystemSchedule(arch2, 80)
        with pytest.raises(SchedulingError, match="incomplete"):
            analyze_design(empty, [app])


class TestBusReport:
    def test_bus_accounting(self, designed):
        schedule, app = designed
        report = analyze_design(schedule, [app])
        bus = report.bus
        assert bus.rounds == 10
        assert bus.total_capacity == 10 * 16
        # Two instances of m0 cross the bus (P0 on N1, P1 on N2).
        assert bus.messages == 2
        assert bus.used_bytes == 2 * 4
        assert bus.utilization == pytest.approx(8 / 160)


class TestMetricsSection:
    def test_metrics_attached_when_future_given(self, designed):
        from repro.core.future import (
            DiscreteDistribution,
            FutureCharacterization,
        )

        schedule, app = designed
        future = FutureCharacterization(
            t_min=40,
            t_need=20,
            b_need=8,
            wcet_distribution=DiscreteDistribution((10,), (1.0,)),
            message_size_distribution=DiscreteDistribution((2,), (1.0,)),
        )
        report = analyze_design(schedule, [app], future)
        assert report.metrics is not None
        assert report.metrics.objective >= 0

    def test_metrics_absent_by_default(self, designed):
        schedule, app = designed
        assert analyze_design(schedule, [app]).metrics is None


class TestRendering:
    def test_render_contains_sections(self, designed):
        schedule, app = designed
        out = render_report(analyze_design(schedule, [app]))
        assert "design report" in out
        assert "nodes:" in out and "graphs:" in out and "bus:" in out
        assert "a/g0" in out

    def test_render_with_metrics(self, designed):
        from repro.core.future import (
            DiscreteDistribution,
            FutureCharacterization,
        )

        schedule, app = designed
        future = FutureCharacterization(
            t_min=40,
            t_need=20,
            b_need=8,
            wcet_distribution=DiscreteDistribution((10,), (1.0,)),
            message_size_distribution=DiscreteDistribution((2,), (1.0,)),
        )
        out = render_report(analyze_design(schedule, [app], future))
        assert "metrics:" in out
