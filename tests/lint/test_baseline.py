"""Baseline round-trip: write, re-run clean, stale detection,
line-shift stability of fingerprints."""

import json
import textwrap


def snippet(source: str) -> str:
    return textwrap.dedent(source).lstrip()


VIOLATING = snippet(
    """
    import time

    def schedule():
        return time.time()
    """
)


class TestBaseline:
    def test_write_then_rerun_is_clean(self, box, tmp_path):
        path = box.write("sched/mod.py", VIOLATING)
        baseline = tmp_path / "baseline.json"

        first = box.run(
            paths=[path], baseline_path=baseline, update_baseline=True
        )
        assert first.ok
        assert len(first.baselined) == 1

        second = box.run(paths=[path], baseline_path=baseline)
        assert second.ok
        assert len(second.baselined) == 1
        assert not second.stale_baseline

    def test_baseline_file_shape(self, box, tmp_path):
        path = box.write("sched/mod.py", VIOLATING)
        baseline = tmp_path / "baseline.json"
        box.run(paths=[path], baseline_path=baseline, update_baseline=True)

        document = json.loads(baseline.read_text(encoding="utf-8"))
        assert document["version"] == 1
        assert len(document["entries"]) == 1
        fingerprint = document["entries"][0]
        assert fingerprint.startswith("DET001|")
        assert "time.time()" in fingerprint

    def test_new_finding_not_covered_by_old_baseline(self, box, tmp_path):
        path = box.write("sched/mod.py", VIOLATING)
        baseline = tmp_path / "baseline.json"
        box.run(paths=[path], baseline_path=baseline, update_baseline=True)

        box.write(
            "sched/mod.py",
            VIOLATING + "\n\ndef again():\n    return time.time()\n",
        )
        result = box.run(paths=[path], baseline_path=baseline)
        assert not result.ok
        assert len(result.findings) == 1
        assert result.findings[0].symbol == "again"
        assert len(result.baselined) == 1

    def test_fixed_finding_reports_stale_entry(self, box, tmp_path):
        path = box.write("sched/mod.py", VIOLATING)
        baseline = tmp_path / "baseline.json"
        box.run(paths=[path], baseline_path=baseline, update_baseline=True)

        box.write("sched/mod.py", "def schedule(now):\n    return now\n")
        result = box.run(paths=[path], baseline_path=baseline)
        assert result.ok  # stale entries don't fail the run by themselves
        assert len(result.stale_baseline) == 1

    def test_fingerprint_survives_line_shift(self, box, tmp_path):
        path = box.write("sched/mod.py", VIOLATING)
        baseline = tmp_path / "baseline.json"
        box.run(paths=[path], baseline_path=baseline, update_baseline=True)

        # Prepend a comment block: every finding moves down three
        # lines, but the source-text fingerprint still matches.
        box.write("sched/mod.py", "# one\n# two\n# three\n" + VIOLATING)
        result = box.run(paths=[path], baseline_path=baseline)
        assert result.ok
        assert len(result.baselined) == 1
        assert not result.stale_baseline

    def test_duplicate_snippets_fingerprint_distinctly(self, box, tmp_path):
        source = snippet(
            """
            import time

            def schedule():
                t = time.time()
                t = time.time()
                return t
            """
        )
        path = box.write("sched/mod.py", source)
        baseline = tmp_path / "baseline.json"
        box.run(paths=[path], baseline_path=baseline, update_baseline=True)

        document = json.loads(baseline.read_text(encoding="utf-8"))
        entries = document["entries"]
        assert len(entries) == 2
        assert len(set(entries)) == 2  # occurrence index disambiguates
