"""Shared fixtures for the repro.lint test suite.

Fixture snippets are written into a throwaway ``repro/<layer>/``
tree: :class:`repro.lint.engine.ModuleInfo` anchors module names at
the last ``repro`` path component, so snippets resolve to real layer
names (``repro.sched.mod`` etc.) without touching the live tree.
"""

from pathlib import Path
from typing import Dict, List, Optional, Sequence

import pytest

from repro.lint import LintConfig, run_lint
from repro.lint.findings import Finding


class LintBox:
    """A scratch ``repro`` package tree plus a lint runner."""

    def __init__(self, root: Path):
        self.root = root

    def write(self, relpath: str, source: str) -> Path:
        """Write ``source`` at ``repro/<relpath>`` (creates packages)."""
        path = self.root / "repro" / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
        return path

    def run(
        self,
        paths: Optional[Sequence[Path]] = None,
        config: Optional[LintConfig] = None,
        **kwargs,
    ):
        return run_lint(
            list(paths) if paths is not None else [self.root],
            config=config or LintConfig(),
            **kwargs,
        )

    def findings(self, source: str, layer: str = "sched") -> List[Finding]:
        """Lint one snippet placed in ``layer`` (that file only)."""
        path = self.write(f"{layer}/snippet.py", source)
        return self.run(paths=[path]).findings

    def rule_ids(self, source: str, layer: str = "sched") -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings(source, layer):
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


@pytest.fixture
def box(tmp_path) -> LintBox:
    return LintBox(tmp_path)
