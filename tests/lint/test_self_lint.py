"""Self-hosting: the live tree must lint clean, and the analyzer must
actually catch a seeded injection into a kernel file.

The injection test is the CI tripwire the acceptance criteria ask
for: copy ``sched/list_scheduler.py`` into a scratch tree, plant a
``time.time()`` call inside ``run_pass``, and assert the self-lint
verdict flips from clean to failing.
"""

import ast
import json
from pathlib import Path

from repro.lint import load_config, run_lint
from repro.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
PYPROJECT = REPO_ROOT / "pyproject.toml"
BASELINE = REPO_ROOT / "lint-baseline.json"


def live_config():
    return load_config(explicit=PYPROJECT)


class TestLiveTree:
    def test_src_repro_is_clean(self):
        result = run_lint([SRC], config=live_config(), baseline_path=BASELINE)
        assert result.ok, "\n".join(f.render() for f in result.findings)

    def test_checked_in_baseline_is_empty(self):
        document = json.loads(BASELINE.read_text(encoding="utf-8"))
        assert document["entries"] == [], (
            "the baseline must stay empty: fix or suppress (with a "
            "reason) instead of grandfathering"
        )

    def test_no_stale_baseline_entries(self):
        result = run_lint([SRC], config=live_config(), baseline_path=BASELINE)
        assert not result.stale_baseline

    def test_every_live_suppression_carries_a_reason(self):
        # LINT001 would already fail test_src_repro_is_clean, but spell
        # the policy out: each live # repro: allow[...] has a reason.
        from repro.lint.engine import iter_python_files
        from repro.lint.suppressions import parse_suppressions

        for path in iter_python_files([SRC]):
            for suppression in parse_suppressions(
                path.read_text(encoding="utf-8")
            ):
                assert suppression.reason, (
                    f"{path}:{suppression.line}: reasonless suppression"
                )

    def test_cli_on_live_tree_exits_zero(self, capsys):
        code = main(
            [
                str(SRC),
                "--config",
                str(PYPROJECT),
                "--baseline",
                str(BASELINE),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "repro-lint: clean" in out


def _inject_wall_clock(source: str, function: str) -> str:
    """Insert ``time.time()`` as the first statement of ``function``.

    Located via ``ast`` (not string surgery) so the test keeps working
    as the scheduler evolves; indentation is taken from the function's
    real first body statement.
    """
    tree = ast.parse(source)
    target = next(
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.FunctionDef) and node.name == function
    )
    first = target.body[0]
    indent = " " * first.col_offset
    probe = f"{indent}import time\n{indent}_injected = time.time()\n"
    lines = source.splitlines(keepends=True)
    at = first.lineno - 1
    return "".join(lines[:at]) + probe + "".join(lines[at:])


class TestSeededInjection:
    def _lint_copy(self, box, mutate):
        source = (SRC / "sched" / "list_scheduler.py").read_text(
            encoding="utf-8"
        )
        path = box.write("sched/list_scheduler.py", mutate(source))
        return run_lint([path], config=live_config())

    def test_pristine_copy_is_clean(self, box):
        result = self._lint_copy(box, lambda source: source)
        assert result.ok, "\n".join(f.render() for f in result.findings)

    def test_injected_wall_clock_fails_self_lint(self, box):
        result = self._lint_copy(
            box, lambda source: _inject_wall_clock(source, "run_pass")
        )
        assert not result.ok
        rules = {finding.rule for finding in result.findings}
        assert "DET001" in rules
        (det,) = [f for f in result.findings if f.rule == "DET001"]
        assert "run_pass" in det.symbol

    def test_injected_global_rng_fails_self_lint(self, box):
        def inject(source: str) -> str:
            return source + (
                "\n\nimport random\n\n"
                "def _tiebreak():\n"
                "    return random.random()\n"
            )

        result = self._lint_copy(box, inject)
        assert not result.ok
        assert {f.rule for f in result.findings} == {"DET002"}
