"""CLI behavior: exit codes, JSON document shape, --write-baseline,
--list-rules, bad paths."""

import json
import textwrap

import pytest

from repro.lint.cli import main


def snippet(source: str) -> str:
    return textwrap.dedent(source).lstrip()


VIOLATING = snippet(
    """
    import time

    def schedule():
        return time.time()
    """
)

CLEAN = "def schedule(now: int) -> int:\n    return now + 1\n"


class TestExitCodes:
    def test_clean_tree_exits_zero(self, box, capsys):
        path = box.write("sched/mod.py", CLEAN)
        assert main([str(path), "--no-baseline"]) == 0
        out = capsys.readouterr().out
        assert "repro-lint: clean" in out

    def test_findings_exit_one(self, box, capsys):
        path = box.write("sched/mod.py", VIOLATING)
        assert main([str(path), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "fix:" in out  # the autofix hint rides along

    def test_missing_path_exits_two(self, box, capsys):
        assert main([str(box.root / "nope.py")]) == 2
        assert "no such path" in capsys.readouterr().err


class TestJsonFormat:
    def test_document_shape(self, box, capsys):
        path = box.write("sched/mod.py", VIOLATING)
        assert main([str(path), "--no-baseline", "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == 1
        assert document["files"] == 1
        assert document["ok"] is False
        (finding,) = document["findings"]
        assert finding["rule"] == "DET001"
        assert finding["path"].endswith("sched/mod.py")
        assert finding["symbol"] == "schedule"
        assert finding["hint"]

    def test_clean_json(self, box, capsys):
        path = box.write("sched/mod.py", CLEAN)
        assert main([str(path), "--no-baseline", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True
        assert document["findings"] == []


class TestBaselineFlow:
    def test_write_baseline_then_clean(self, box, tmp_path, capsys):
        path = box.write("sched/mod.py", VIOLATING)
        baseline = tmp_path / "baseline.json"

        assert (
            main([str(path), "--baseline", str(baseline), "--write-baseline"])
            == 0
        )
        assert baseline.is_file()
        capsys.readouterr()

        assert main([str(path), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_stale_baseline_is_reported(self, box, tmp_path, capsys):
        path = box.write("sched/mod.py", VIOLATING)
        baseline = tmp_path / "baseline.json"
        main([str(path), "--baseline", str(baseline), "--write-baseline"])
        capsys.readouterr()

        box.write("sched/mod.py", CLEAN)
        assert main([str(path), "--baseline", str(baseline)]) == 0
        assert "stale baseline" in capsys.readouterr().out


class TestListRules:
    @pytest.mark.parametrize("fmt", ["human", "json"])
    def test_catalog_lists_every_rule(self, fmt, capsys):
        assert main(["--list-rules", "--format", fmt]) == 0
        out = capsys.readouterr().out
        for rule_id in [
            "DET001", "DET002", "DET003", "DET004", "DET005", "DET006",
            "LAY001", "LAY002", "LAY003",
            "CON001", "CON002", "CON003",
            "LINT001", "LINT002", "LINT003",
        ]:
            assert rule_id in out
