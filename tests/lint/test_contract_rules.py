"""Fixture pairs for CON001 (footprint contract), CON002 (checkpoint
state pair), CON003 (hot-path I/O)."""

import textwrap


def snippet(source: str) -> str:
    return textwrap.dedent(source).lstrip()


def rules_in(findings):
    return sorted({f.rule for f in findings})


class TestTransformationFootprint:
    def test_positive_union_member_missing_footprint(self, box):
        box.write(
            "core/transformations.py",
            snippet(
                """
                from typing import Union

                class RemapProcess:
                    def apply(self, design):
                        return design

                    def describe(self):
                        return "remap"

                Transformation = Union["RemapProcess"]
                """
            ),
        )
        findings = box.run().findings
        con = [f for f in findings if f.rule == "CON001"]
        assert len(con) == 1
        assert con[0].symbol == "RemapProcess"

    def test_positive_duck_typed_move_class(self, box):
        # Not in the union, but walks and quacks like a move: apply +
        # describe without footprint still breaks the delta kernel.
        box.write(
            "core/extra_moves.py",
            snippet(
                """
                class NudgeDeadline:
                    def apply(self, design):
                        return design

                    def describe(self):
                        return "nudge"
                """
            ),
        )
        findings = box.run().findings
        assert [f for f in findings if f.rule == "CON001"]

    def test_negative_complete_member(self, box):
        box.write(
            "core/transformations.py",
            snippet(
                """
                from typing import Union

                class RemapProcess:
                    def apply(self, design):
                        return design

                    def describe(self):
                        return "remap"

                    def footprint(self, design):
                        return None

                Transformation = Union["RemapProcess"]
                """
            ),
        )
        findings = box.run().findings
        assert "CON001" not in rules_in(findings)

    def test_negative_unrelated_class(self, box):
        box.write(
            "core/other.py",
            snippet(
                """
                class Report:
                    def describe(self):
                        return "report"
                """
            ),
        )
        findings = box.run().findings
        assert "CON001" not in rules_in(findings)


class TestCheckpointStatePair:
    def test_positive_acceptor_missing_both(self, box):
        box.write(
            "search/acceptors2.py",
            snippet(
                """
                class GreedyAcceptor:
                    def decide(self, current, moves, results, rng):
                        return results[0]
                """
            ),
        )
        findings = box.run().findings
        assert [f for f in findings if f.rule == "CON002"]

    def test_positive_half_pair(self, box):
        box.write(
            "search/proposers2.py",
            snippet(
                """
                class RoundRobinProposer:
                    def propose(self, spec, current, rng):
                        return []

                    def state_dict(self):
                        return {}
                """
            ),
        )
        findings = box.run().findings
        con = [f for f in findings if f.rule == "CON002"]
        assert len(con) == 1
        assert "load_state_dict" in con[0].message

    def test_negative_full_pair(self, box):
        box.write(
            "search/acceptors2.py",
            snippet(
                """
                class GreedyAcceptor:
                    def decide(self, current, moves, results, rng):
                        return results[0]

                    def state_dict(self):
                        return {}

                    def load_state_dict(self, state):
                        pass
                """
            ),
        )
        findings = box.run().findings
        assert "CON002" not in rules_in(findings)

    def test_negative_protocol_definition(self, box):
        box.write(
            "search/protocols.py",
            snippet(
                """
                from typing import Protocol

                class Acceptor(Protocol):
                    def decide(self, current, moves, results, rng):
                        ...
                """
            ),
        )
        findings = box.run().findings
        assert "CON002" not in rules_in(findings)

    def test_negative_stateless_proposer(self, box):
        # propose without either half of the pair is fine (stateless);
        # only an *inconsistent* half-pair is flagged.
        box.write(
            "search/proposers2.py",
            snippet(
                """
                class FullNeighbourhood:
                    def propose(self, spec, current, rng):
                        return []
                """
            ),
        )
        findings = box.run().findings
        assert "CON002" not in rules_in(findings)


class TestHotPathIO:
    def test_positive_print_in_run_pass(self, box):
        findings = box.findings(
            snippet(
                """
                def run_pass(state):
                    print("scheduling", state)
                    return state
                """
            )
        )
        assert [f for f in findings if f.rule == "CON003"]

    def test_positive_logging_in_evaluate_move(self, box):
        findings = box.findings(
            snippet(
                """
                import logging

                log = logging.getLogger(__name__)

                def evaluate_move(parent, move):
                    logging.info("evaluating %s", move)
                    return None
                """
            ),
            layer="engine",
        )
        assert [f for f in findings if f.rule == "CON003"]

    def test_positive_open_in_divergence(self, box):
        findings = box.findings(
            snippet(
                """
                def _divergence(parent, fp):
                    with open("trace.log", "w") as fh:
                        fh.write("x")
                    return 0
                """
            ),
            layer="engine",
        )
        assert [f for f in findings if f.rule == "CON003"]

    def test_negative_io_outside_hot_path(self, box):
        findings = box.findings(
            snippet(
                """
                def report(state):
                    print("done", state)
                """
            )
        )
        assert not [f for f in findings if f.rule == "CON003"]

    def test_negative_clean_hot_path(self, box):
        findings = box.findings(
            snippet(
                """
                def run_pass(state):
                    return sorted(state)
                """
            )
        )
        assert not [f for f in findings if f.rule == "CON003"]
