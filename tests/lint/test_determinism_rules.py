"""Fixture pairs (one violating, one clean) for DET001..DET006."""

import textwrap


def snippet(source: str) -> str:
    return textwrap.dedent(source).lstrip()


# ----------------------------------------------------------------------
# DET001 wall clock
# ----------------------------------------------------------------------
class TestWallClock:
    def test_positive_time_time(self, box):
        ids = box.rule_ids(
            snippet(
                """
                import time

                def schedule():
                    return time.time()
                """
            )
        )
        assert ids.get("DET001") == 1

    def test_positive_aliased_perf_counter(self, box):
        ids = box.rule_ids(
            snippet(
                """
                from time import perf_counter as clock

                def schedule():
                    return clock()
                """
            )
        )
        assert ids.get("DET001") == 1

    def test_positive_datetime_now(self, box):
        ids = box.rule_ids(
            snippet(
                """
                from datetime import datetime

                def stamp():
                    return datetime.now()
                """
            )
        )
        assert ids.get("DET001") == 1

    def test_negative_no_clock(self, box):
        ids = box.rule_ids(
            snippet(
                """
                def schedule(now: int) -> int:
                    return now + 1
                """
            )
        )
        assert "DET001" not in ids

    def test_negative_outside_kernel_layer(self, box):
        ids = box.rule_ids(
            snippet(
                """
                import time

                def report():
                    return time.time()
                """
            ),
            layer="experiments",
        )
        assert "DET001" not in ids

    def test_negative_timing_boundary_allowlisted(self, box):
        # The default allowlist contains SearchLoop.program in
        # repro.search.loop; a fixture with the same module path and
        # qualname inherits the exemption.
        source = snippet(
            """
            import time

            class SearchLoop:
                def program(self):
                    started = time.perf_counter()
                    return started
            """
        )
        path = box.write("search/loop.py", source)
        findings = box.run(paths=[path]).findings
        assert not [f for f in findings if f.rule == "DET001"]


# ----------------------------------------------------------------------
# DET002 module-global RNG
# ----------------------------------------------------------------------
class TestGlobalRng:
    def test_positive_stdlib_random(self, box):
        ids = box.rule_ids(
            snippet(
                """
                import random

                def jitter():
                    return random.random()
                """
            )
        )
        assert ids.get("DET002") == 1

    def test_positive_numpy_global(self, box):
        ids = box.rule_ids(
            snippet(
                """
                import numpy as np

                def pick(n):
                    return np.random.randint(n)
                """
            )
        )
        assert ids.get("DET002") == 1

    def test_positive_unseeded_default_rng(self, box):
        ids = box.rule_ids(
            snippet(
                """
                import numpy as np

                def fresh():
                    return np.random.default_rng()
                """
            )
        )
        assert ids.get("DET002") == 1

    def test_negative_seeded_default_rng(self, box):
        ids = box.rule_ids(
            snippet(
                """
                import numpy as np

                def fresh(seed: int):
                    return np.random.default_rng(seed)
                """
            )
        )
        assert "DET002" not in ids

    def test_negative_generator_parameter(self, box):
        ids = box.rule_ids(
            snippet(
                """
                import numpy as np

                def pick(options, rng: np.random.Generator):
                    return options[rng.integers(len(options))]
                """
            )
        )
        assert "DET002" not in ids


# ----------------------------------------------------------------------
# DET003 unordered iteration
# ----------------------------------------------------------------------
class TestUnorderedIteration:
    def test_positive_for_over_set_call(self, box):
        ids = box.rule_ids(
            snippet(
                """
                def order(items):
                    out = []
                    for item in set(items):
                        out.append(item)
                    return out
                """
            )
        )
        assert ids.get("DET003") == 1

    def test_positive_list_of_set_literal(self, box):
        ids = box.rule_ids(
            snippet(
                """
                def order(a, b):
                    return list({a, b})
                """
            )
        )
        assert ids.get("DET003") == 1

    def test_positive_join_over_keys_intersection(self, box):
        # Dict views are insertion-ordered, but set operations over
        # them produce real sets.
        ids = box.rule_ids(
            snippet(
                """
                def signature(a, b):
                    return ",".join(a.keys() & b.keys())
                """
            )
        )
        assert ids.get("DET003") == 1

    def test_positive_local_set_variable(self, box):
        ids = box.rule_ids(
            snippet(
                """
                def order(items):
                    seen = set(items)
                    return [x for x in seen]
                """
            )
        )
        assert ids.get("DET003") == 1

    def test_positive_keyed_sort_over_set(self, box):
        ids = box.rule_ids(
            snippet(
                """
                def order(items):
                    return sorted(set(items), key=len)
                """
            )
        )
        assert ids.get("DET003") == 1

    def test_positive_annotated_footprint_field(self, box):
        # Cross-module: the dataclass declares FrozenSet fields; a
        # consumer annotating its parameter with the class name trips
        # the rule when iterating the field.
        box.write(
            "core/fp.py",
            snippet(
                """
                from dataclasses import dataclass
                from typing import FrozenSet

                @dataclass(frozen=True)
                class MoveFootprint:
                    processes: FrozenSet[str] = frozenset()
                """
            ),
        )
        box.write(
            "engine/consumer.py",
            snippet(
                """
                def scan(fp: "MoveFootprint"):
                    out = []
                    for pid in fp.processes:
                        out.append(pid)
                    return out
                """
            ),
        )
        findings = box.run().findings
        assert [f for f in findings if f.rule == "DET003"]

    def test_negative_sorted_iteration(self, box):
        ids = box.rule_ids(
            snippet(
                """
                def order(items):
                    out = []
                    for item in sorted(set(items)):
                        out.append(item)
                    return out
                """
            )
        )
        assert "DET003" not in ids

    def test_negative_order_insensitive_consumers(self, box):
        ids = box.rule_ids(
            snippet(
                """
                def stats(items):
                    s = set(items)
                    return len(s), sum(s), min(s), max(s)
                """
            )
        )
        assert "DET003" not in ids

    def test_negative_dict_iteration_is_insertion_ordered(self, box):
        ids = box.rule_ids(
            snippet(
                """
                def order(mapping):
                    return [k for k in mapping.keys()]
                """
            )
        )
        assert "DET003" not in ids


# ----------------------------------------------------------------------
# DET004 hash()
# ----------------------------------------------------------------------
class TestHashBuiltin:
    def test_positive(self, box):
        ids = box.rule_ids(
            snippet(
                """
                def key(design_id: str) -> int:
                    return hash(design_id) % 1024
                """
            )
        )
        assert ids.get("DET004") == 1

    def test_negative_dunder_hash_definition(self, box):
        ids = box.rule_ids(
            snippet(
                """
                class Key:
                    def __hash__(self):
                        return 7
                """
            )
        )
        assert "DET004" not in ids


# ----------------------------------------------------------------------
# DET005 ambient state
# ----------------------------------------------------------------------
class TestAmbientState:
    def test_positive_environ(self, box):
        ids = box.rule_ids(
            snippet(
                """
                import os

                def jobs():
                    return int(os.environ.get("JOBS", "1"))
                """
            )
        )
        assert ids.get("DET005") == 1

    def test_positive_uuid(self, box):
        ids = box.rule_ids(
            snippet(
                """
                import uuid

                def fresh_id():
                    return uuid.uuid4().hex
                """
            )
        )
        assert ids.get("DET005") == 1

    def test_negative_os_path_is_fine(self, box):
        ids = box.rule_ids(
            snippet(
                """
                import os

                def name(p):
                    return os.path.basename(p)
                """
            )
        )
        assert "DET005" not in ids


# ----------------------------------------------------------------------
# DET006 float equality
# ----------------------------------------------------------------------
class TestFloatEquality:
    def test_positive_float_literal(self, box):
        ids = box.rule_ids(
            snippet(
                """
                def done(slack):
                    return slack == 0.0
                """
            )
        )
        assert ids.get("DET006") == 1

    def test_positive_division(self, box):
        ids = box.rule_ids(
            snippet(
                """
                def same(a, b, n):
                    return a / n != b
                """
            )
        )
        assert ids.get("DET006") == 1

    def test_positive_float_get_default(self, box):
        ids = box.rule_ids(
            snippet(
                """
                def unchanged(old, new, pid):
                    return old.get(pid, 0.0) == new.get(pid, 0.0)
                """
            )
        )
        assert ids.get("DET006") == 1

    def test_negative_integer_comparison(self, box):
        ids = box.rule_ids(
            snippet(
                """
                def done(slack: int) -> bool:
                    return slack == 0
                """
            )
        )
        assert "DET006" not in ids

    def test_negative_module_out_of_scope(self, box):
        # DET006 only applies to the configured scheduler/metric
        # module prefixes; repro.search is not among them.
        ids = box.rule_ids(
            snippet(
                """
                def done(slack):
                    return slack == 0.0
                """
            ),
            layer="search",
        )
        assert "DET006" not in ids
