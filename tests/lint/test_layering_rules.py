"""Fixture pairs for LAY001 (upward import), LAY002 (cycle), LAY003
(private deep import)."""

import textwrap

from repro.lint import LintConfig


def snippet(source: str) -> str:
    return textwrap.dedent(source).lstrip()


def rules_in(findings):
    return sorted({f.rule for f in findings})


class TestUpwardImport:
    def test_positive_sched_imports_search(self, box):
        box.write(
            "sched/mod.py",
            snippet(
                """
                from repro.search.loop import SearchLoop

                def run(loop: SearchLoop):
                    return loop
                """
            ),
        )
        findings = box.run().findings
        lay = [f for f in findings if f.rule == "LAY001"]
        assert len(lay) == 1
        assert "repro.search.loop" in lay[0].message

    def test_negative_downward_import(self, box):
        box.write(
            "search/mod.py",
            snippet(
                """
                from repro.sched.list_scheduler import run_pass

                def go():
                    return run_pass
                """
            ),
        )
        findings = box.run().findings
        assert "LAY001" not in rules_in(findings)

    def test_negative_type_checking_guard(self, box):
        box.write(
            "sched/mod.py",
            snippet(
                """
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from repro.search.loop import SearchLoop

                def run(loop: "SearchLoop"):
                    return loop
                """
            ),
        )
        findings = box.run().findings
        assert "LAY001" not in rules_in(findings)

    def test_negative_lazy_function_import(self, box):
        # Function-scope imports are the sanctioned cycle-breaker.
        box.write(
            "sched/mod.py",
            snippet(
                """
                def run():
                    from repro.search.loop import SearchLoop
                    return SearchLoop
                """
            ),
        )
        findings = box.run().findings
        assert "LAY001" not in rules_in(findings)

    def test_negative_allowlisted_edge(self, box):
        box.write(
            "sched/mod.py",
            snippet(
                """
                from repro.search.loop import SearchLoop

                def run(loop: SearchLoop):
                    return loop
                """
            ),
        )
        config = LintConfig(
            import_allowlist=(
                "repro.sched.mod -> repro.search.loop :: fixture test",
            )
        )
        findings = box.run(config=config).findings
        assert "LAY001" not in rules_in(findings)


class TestImportCycle:
    def test_positive_two_module_cycle(self, box):
        box.write(
            "sched/alpha.py",
            snippet(
                """
                from repro.sched.beta import helper

                def alpha():
                    return helper()
                """
            ),
        )
        box.write(
            "sched/beta.py",
            snippet(
                """
                from repro.sched.alpha import alpha

                def helper():
                    return alpha
                """
            ),
        )
        findings = box.run().findings
        cycles = [f for f in findings if f.rule == "LAY002"]
        assert cycles
        assert "repro.sched.alpha" in cycles[0].message
        assert "repro.sched.beta" in cycles[0].message

    def test_negative_lazy_import_breaks_cycle(self, box):
        box.write(
            "sched/alpha.py",
            snippet(
                """
                from repro.sched.beta import helper

                def alpha():
                    return helper()
                """
            ),
        )
        box.write(
            "sched/beta.py",
            snippet(
                """
                def helper():
                    from repro.sched.alpha import alpha
                    return alpha
                """
            ),
        )
        findings = box.run().findings
        assert "LAY002" not in rules_in(findings)

    def test_negative_chain_is_not_cycle(self, box):
        box.write("sched/a.py", "from repro.sched.b import x\n")
        box.write("sched/b.py", "from repro.sched.c import x\n")
        box.write("sched/c.py", "x = 1\n")
        findings = box.run().findings
        assert "LAY002" not in rules_in(findings)


class TestPrivateImport:
    def test_positive_cross_layer_private_module(self, box):
        box.write("sched/_impl.py", "TABLE = {}\n")
        box.write(
            "engine/mod.py",
            snippet(
                """
                from repro.sched._impl import TABLE

                def peek():
                    return TABLE
                """
            ),
        )
        findings = box.run().findings
        assert [f for f in findings if f.rule == "LAY003"]

    def test_negative_same_layer_private_module(self, box):
        box.write("sched/_impl.py", "TABLE = {}\n")
        box.write(
            "sched/mod.py",
            snippet(
                """
                from repro.sched._impl import TABLE

                def peek():
                    return TABLE
                """
            ),
        )
        findings = box.run().findings
        assert "LAY003" not in rules_in(findings)

    def test_negative_public_cross_layer_import(self, box):
        box.write(
            "engine/mod.py",
            snippet(
                """
                from repro.sched.list_scheduler import run_pass

                def go():
                    return run_pass
                """
            ),
        )
        findings = box.run().findings
        assert "LAY003" not in rules_in(findings)
