"""Suppression semantics: reasoned suppression, LINT001, LINT002,
multi-id comments, standalone placement, string-literal immunity."""

import textwrap


def snippet(source: str) -> str:
    return textwrap.dedent(source).lstrip()


class TestSuppression:
    def test_reasoned_suppression_silences_finding(self, box):
        result_findings = box.findings(
            snippet(
                """
                import time

                def schedule():
                    return time.time()  # repro: allow[DET001] fixture: deliberate clock read
                """
            )
        )
        assert not [f for f in result_findings if f.rule == "DET001"]

    def test_suppressed_findings_are_counted(self, box):
        path = box.write(
            "sched/snippet.py",
            snippet(
                """
                import time

                def schedule():
                    return time.time()  # repro: allow[DET001] fixture: deliberate clock read
                """
            ),
        )
        result = box.run(paths=[path])
        assert len(result.suppressed) == 1
        assert result.suppressed[0].rule == "DET001"

    def test_standalone_comment_covers_next_line(self, box):
        result_findings = box.findings(
            snippet(
                """
                import time

                def schedule():
                    # repro: allow[DET001] fixture: deliberate clock read
                    return time.time()
                """
            )
        )
        assert not [f for f in result_findings if f.rule == "DET001"]

    def test_missing_reason_is_lint001_and_finding_stands(self, box):
        ids = box.rule_ids(
            snippet(
                """
                import time

                def schedule():
                    return time.time()  # repro: allow[DET001]
                """
            )
        )
        assert ids.get("LINT001") == 1
        assert ids.get("DET001") == 1  # reasonless comment silences nothing

    def test_stale_suppression_is_lint002(self, box):
        ids = box.rule_ids(
            snippet(
                """
                def schedule(now: int) -> int:
                    return now + 1  # repro: allow[DET001] nothing to silence here
                """
            )
        )
        assert ids.get("LINT002") == 1

    def test_multiple_ids_in_one_comment(self, box):
        result_findings = box.findings(
            snippet(
                """
                import time

                def schedule(items):
                    # repro: allow[DET001,DET003] fixture: both silenced at once
                    return [time.time() for _ in set(items)]
                """
            )
        )
        rules = {f.rule for f in result_findings}
        assert "DET001" not in rules
        assert "DET003" not in rules
        assert "LINT002" not in rules

    def test_marker_inside_string_is_not_a_suppression(self, box):
        # The marker text in a docstring/string literal must neither
        # suppress anything nor count as stale.
        ids = box.rule_ids(
            snippet(
                '''
                import time

                def schedule():
                    """Docs mentioning # repro: allow[DET001] the syntax."""
                    marker = "# repro: allow[DET001] not a comment"
                    return time.time(), marker
                '''
            )
        )
        assert ids.get("DET001") == 1
        assert "LINT002" not in ids

    def test_suppression_does_not_leak_to_other_lines(self, box):
        ids = box.rule_ids(
            snippet(
                """
                import time

                def schedule():
                    a = time.time()  # repro: allow[DET001] fixture: first read only

                    b = time.time()
                    return a, b
                """
            )
        )
        assert ids.get("DET001") == 1
