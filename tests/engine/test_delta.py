"""Tests for the incremental (delta) evaluation kernel.

The contract under test: for any parent design and any transformation,
evaluating the child through the delta path produces an outcome
**bit-identical** to a cold evaluation -- schedule occupancy, metrics,
validity verdicts, failure reasons, and even the recorded trace (so
children chain as parents).  Plus: move footprints, engine/cache
integration, pool-path determinism, and seeded strategy equivalence
with delta on/off.
"""

from __future__ import annotations

import functools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.improvement import DescentParams, steepest_descent
from repro.core.initial_mapping import InitialMapper
from repro.core.mapping_heuristic import MappingHeuristic
from repro.core.simulated_annealing import SimulatedAnnealing
from repro.core.strategy import DesignEvaluator
from repro.core.transformations import (
    CandidateDesign,
    DelayMessage,
    RemapProcess,
    SwapPriorities,
    remap_moves,
)
from repro.engine import EvaluationEngine, evaluate_candidate
from repro.engine.compiled_spec import CompiledSpec
from repro.engine.delta import DeltaEvaluator, DeltaStats
from repro.gen import families
from repro.sched.list_scheduler import ListScheduler


def occupancy(schedule):
    """Canonical rendering of a schedule's full occupancy."""
    nodes = {
        node_id: sorted(
            (e.process_id, e.instance, e.start, e.end, e.frozen)
            for e in schedule.entries_on(node_id)
        )
        for node_id in schedule.architecture.node_ids
    }
    bus = sorted(
        (o.message_id, o.instance, o.node_id, o.round_index, o.size, o.frozen)
        for o in schedule.bus.all_entries()
    )
    return nodes, bus


def trace_identity(trace):
    """Canonical rendering of a schedule trace."""
    return (
        [tuple(event) for event in trace.events],
        trace.ready_at,
        trace.pop_index,
        trace.node_last,
        trace.bus_last,
    )


def im_parent(spec, compiled, scheduler):
    """A traced parent evaluation at the Initial Mapping."""
    mapper = InitialMapper(spec.architecture)
    outcome = mapper.try_map_and_schedule(
        spec.current, base=spec.base_schedule, compiled=compiled
    )
    assert outcome is not None
    mapping, _ = outcome
    parent = evaluate_candidate(
        spec,
        compiled,
        scheduler,
        CandidateDesign(mapping, dict(compiled.default_priorities)),
        record_trace=True,
    )
    assert parent is not None
    return parent


def systematic_moves(spec, parent, limit_delays: int = 8):
    """Every remap, a ladder of swaps, and message delays up/down."""
    moves = list(
        remap_moves(parent.design.mapping, [p.id for p in spec.current.processes])
    )
    pids = [p.id for p in spec.current.processes]
    moves.extend(
        SwapPriorities(a, b) for a, b in zip(pids, pids[1:])
    )
    moves.extend(
        DelayMessage(m.id, delta)
        for m in spec.current.messages[:limit_delays]
        for delta in (+1, -1)
    )
    return moves


@pytest.fixture(scope="module")
def kernel(spec):
    compiled = CompiledSpec(spec)
    scheduler = ListScheduler(spec.architecture)
    return compiled, scheduler, DeltaEvaluator(compiled, scheduler)


class TestFootprints:
    def test_remap_includes_colocated_senders_only(self, spec, kernel):
        compiled, scheduler, _ = kernel
        parent = im_parent(spec, compiled, scheduler)
        mapping = parent.design.mapping
        for process in spec.current.processes:
            current_node = mapping.node_of(process.id)
            for node_id in process.allowed_nodes:
                if node_id == current_node:
                    continue
                fp = RemapProcess(process.id, node_id).footprint(parent.design)
                assert process.id in fp.processes
                assert fp.nodes == {current_node, node_id}
                graph = spec.current.graph_of(process.id)
                for msg in graph.in_messages(process.id):
                    src_node = mapping.node_of(msg.src)
                    expected = src_node in (current_node, node_id)
                    assert (msg.src in fp.processes) == expected

    def test_swap_footprint_is_priority_only(self, spec, kernel):
        compiled, scheduler, _ = kernel
        parent = im_parent(spec, compiled, scheduler)
        pids = [p.id for p in spec.current.processes]
        fp = SwapPriorities(pids[0], pids[1]).footprint(parent.design)
        assert fp.reprioritized == {pids[0], pids[1]}
        assert not fp.processes

    def test_delay_footprint_is_the_sender(self, spec, kernel):
        compiled, scheduler, _ = kernel
        parent = im_parent(spec, compiled, scheduler)
        msg = spec.current.messages[0]
        fp = DelayMessage(msg.id, +1).footprint(parent.design)
        assert fp.processes == {msg.src}
        assert fp.messages == {msg.id}


class TestDeltaEqualsCold:
    def test_systematic_neighbourhood(self, spec, kernel):
        compiled, scheduler, delta = kernel
        parent = im_parent(spec, compiled, scheduler)
        used = 0
        for move in systematic_moves(spec, parent):
            child = move.apply(parent.design)
            cold = evaluate_candidate(
                spec, compiled, scheduler, child, record_trace=True
            )
            out, via_delta = delta.evaluate_move(parent, move, child)
            used += via_delta
            assert (cold is None) == (out is None), move.describe()
            if cold is None:
                continue
            assert occupancy(cold.schedule) == occupancy(out.schedule)
            assert cold.metrics == out.metrics
            assert trace_identity(cold.trace) == trace_identity(out.trace)
        assert used > 0  # the incremental path actually ran

    def test_chained_generations(self, spec, kernel):
        """Delta children serve as parents: a whole walk stays exact."""
        compiled, scheduler, delta = kernel
        current = im_parent(spec, compiled, scheduler)
        import random

        rng = random.Random(11)
        pids = [p.id for p in spec.current.processes]
        messages = [m.id for m in spec.current.messages]
        for _ in range(60):
            roll = rng.random()
            if roll < 0.5:
                pid = rng.choice(pids)
                options = [
                    n
                    for n in spec.current.process(pid).allowed_nodes
                    if n != current.design.mapping.node_of(pid)
                ]
                if not options:
                    continue
                move = RemapProcess(pid, rng.choice(options))
            elif roll < 0.85 or not messages:
                move = SwapPriorities(*rng.sample(pids, 2))
            else:
                move = DelayMessage(rng.choice(messages), rng.choice([1, -1]))
            child = move.apply(current.design)
            cold = evaluate_candidate(
                spec, compiled, scheduler, child, record_trace=True
            )
            out, _ = delta.evaluate_move(current, move, child)
            assert (cold is None) == (out is None)
            if cold is not None:
                assert occupancy(cold.schedule) == occupancy(out.schedule)
                assert cold.metrics == out.metrics
                assert trace_identity(cold.trace) == trace_identity(out.trace)
                current = out

    def test_failure_reasons_match(self):
        """Invalid children report the cold run's exact failure."""
        from repro.gen.scenario import ScenarioParams, build_scenario

        # A tight current application: the IM start is valid, but a
        # good share of the remap neighbourhood misses deadlines.
        scenario = build_scenario(
            ScenarioParams(
                n_existing=14, n_current=10, current_utilization=0.3
            ),
            seed=4,
        )
        spec = scenario.spec()
        compiled = CompiledSpec(spec)
        scheduler = ListScheduler(spec.architecture)
        delta = DeltaEvaluator(compiled, scheduler)
        parent = im_parent(spec, compiled, scheduler)
        checked = 0
        for move in systematic_moves(spec, parent, limit_delays=20):
            child = move.apply(parent.design)
            cold = scheduler.try_schedule(
                spec.current,
                child.mapping,
                priorities=child.priorities,
                message_delays=child.message_delays,
                compiled=compiled,
            )
            if cold.success:
                continue
            attempt = delta.try_resume(parent, move, child)
            if attempt is None:
                continue  # fell back; cold path is the delta path
            result, _, _ = attempt
            assert not result.success
            assert result.failure_reason == cold.failure_reason
            assert result.scheduled_jobs == cold.scheduled_jobs
            assert result.total_jobs == cold.total_jobs
            checked += 1
        assert checked > 0, "scenario produced no invalid children to compare"


class TestEngineMoveAPI:
    def test_evaluate_move_matches_evaluate(self, spec):
        with EvaluationEngine(spec) as delta_on, EvaluationEngine(
            spec, use_delta=False
        ) as delta_off:
            parent_on = im_parent(spec, delta_on.compiled, ListScheduler(spec.architecture))
            moves = systematic_moves(spec, parent_on)
            for move in moves:
                a = delta_on.evaluate_move(parent_on, move)
                b = delta_off.evaluate(move.apply(parent_on.design))
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.metrics == b.metrics
            # identical cache accounting on both engines
            assert delta_on.cache_stats().lookups == delta_off.cache_stats().lookups
            assert delta_on.cache_stats().hits == delta_off.cache_stats().hits
            # every cache miss went through the delta path; hits never do
            assert (
                delta_on.delta_stats().attempts
                == delta_on.cache_stats().misses
            )
            assert delta_on.delta_stats().hits > 0
            assert delta_off.delta_stats() == DeltaStats(0, 0)

    def test_evaluate_moves_matches_evaluate_many(self, spec):
        scheduler = ListScheduler(spec.architecture)
        with EvaluationEngine(spec) as a, EvaluationEngine(
            spec, use_delta=False
        ) as b:
            parent = im_parent(spec, a.compiled, scheduler)
            moves = systematic_moves(spec, parent)
            moves = moves + moves[:5]  # duplicates exercise the dedup plan
            res_a = a.evaluate_moves(parent, moves)
            res_b = b.evaluate_many([m.apply(parent.design) for m in moves])
            assert len(res_a) == len(res_b) == len(moves)
            for x, y in zip(res_a, res_b):
                assert (x is None) == (y is None)
                if x is not None:
                    assert x.metrics == y.metrics
            assert a.cache_stats().hits == b.cache_stats().hits
            assert a.cache_stats().misses == b.cache_stats().misses

    def test_pool_path_matches_serial_and_stats(self, spec):
        scheduler = ListScheduler(spec.architecture)
        with EvaluationEngine(spec, use_cache=False) as serial, EvaluationEngine(
            spec, use_cache=False, jobs=2, parallel_threshold=0
        ) as pooled:
            parent_s = im_parent(spec, serial.compiled, scheduler)
            parent_p = im_parent(
                spec, pooled.compiled, ListScheduler(spec.architecture)
            )
            moves = systematic_moves(spec, parent_s)
            res_s = serial.evaluate_moves(parent_s, moves)
            res_p = pooled.evaluate_moves(parent_p, moves)
            for x, y in zip(res_s, res_p):
                assert (x is None) == (y is None)
                if x is not None:
                    assert x.metrics == y.metrics
                    assert occupancy(x.schedule) == occupancy(y.schedule)
                    # pooled outcomes carry the delta attachments too
                    assert y.trace is not None and y.memo is not None
            assert serial.delta_stats() == pooled.delta_stats()

    def test_closed_engine_refuses_move_evaluation(self, spec):
        engine = EvaluationEngine(spec)
        parent = im_parent(
            spec, engine.compiled, ListScheduler(spec.architecture)
        )
        move = systematic_moves(spec, parent)[0]
        engine.close()
        with pytest.raises(RuntimeError):
            engine.evaluate_move(parent, move)
        with pytest.raises(RuntimeError):
            engine.evaluate_moves(parent, [move])

    def test_traceless_parent_falls_back(self, spec):
        with EvaluationEngine(spec, use_cache=False) as engine:
            parent = im_parent(
                spec, engine.compiled, ListScheduler(spec.architecture)
            )
            parent.trace = None
            move = systematic_moves(spec, parent)[0]
            out = engine.evaluate_move(parent, move)
            cold = engine.evaluate(move.apply(parent.design))
            assert (out is None) == (cold is None)
            if out is not None:
                assert out.metrics == cold.metrics
            assert engine.delta_stats().hits == 0
            assert engine.delta_stats().fallbacks >= 1


class TestSteepestDescentDelta:
    def test_descent_identical_with_delta_off_and_pool(self, spec):
        def run(**kwargs):
            with DesignEvaluator(spec, **kwargs) as evaluator:
                parent = im_parent(
                    spec, evaluator.compiled, ListScheduler(spec.architecture)
                )
                best = steepest_descent(
                    spec, evaluator, parent, DescentParams(max_iterations=6)
                )
                return (
                    tuple(sorted(best.design.mapping.as_dict().items())),
                    tuple(sorted(best.design.priorities.items())),
                    tuple(sorted(best.design.message_delays.items())),
                    best.objective,
                )

        reference = run()
        assert run(use_delta=False) == reference
        assert run(use_cache=False) == reference
        assert run(jobs=2, parallel_threshold=0) == reference
        assert run(jobs=3, parallel_threshold=0, use_cache=False) == reference


# ----------------------------------------------------------------------
# property tests across every registered scenario family
# ----------------------------------------------------------------------
@functools.lru_cache(maxsize=32)
def _family_fixture(family_name: str, seed: int):
    """Built scenario + compiled kernel for one (family, seed) cell."""
    family = families.get_family(family_name)
    scenario = family.build(family.smallest_preset, seed=seed)
    spec = scenario.spec()
    compiled = CompiledSpec(spec)
    scheduler = ListScheduler(spec.architecture)
    delta = DeltaEvaluator(compiled, scheduler)
    parent = im_parent(spec, compiled, scheduler)
    return spec, compiled, scheduler, delta, parent


@pytest.mark.parametrize("family_name", families.family_names())
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_delta_equals_cold_property(family_name, data):
    """Random move sequences on every family: delta == cold, chained."""
    seed = data.draw(st.sampled_from([1, 2]), label="scenario seed")
    spec, compiled, scheduler, delta, parent = _family_fixture(
        family_name, seed
    )
    pids = [p.id for p in spec.current.processes]
    messages = [m.id for m in spec.current.messages]
    current = parent
    n_moves = data.draw(st.integers(min_value=1, max_value=5), label="moves")
    for _ in range(n_moves):
        kind = data.draw(
            st.sampled_from(
                ["remap", "swap", "delay"] if messages else ["remap", "swap"]
            ),
            label="kind",
        )
        if kind == "remap":
            pid = data.draw(st.sampled_from(pids), label="pid")
            options = [
                n
                for n in spec.current.process(pid).allowed_nodes
                if n != current.design.mapping.node_of(pid)
            ]
            if not options:
                continue
            move = RemapProcess(
                pid, data.draw(st.sampled_from(options), label="node")
            )
        elif kind == "swap":
            if len(pids) < 2:
                continue
            first = data.draw(st.sampled_from(pids), label="first")
            second = data.draw(st.sampled_from(pids), label="second")
            if first == second:
                continue
            move = SwapPriorities(first, second)
        else:
            move = DelayMessage(
                data.draw(st.sampled_from(messages), label="message"),
                data.draw(st.sampled_from([1, -1]), label="delta"),
            )
        child = move.apply(current.design)
        cold = evaluate_candidate(
            spec, compiled, scheduler, child, record_trace=True
        )
        out, _ = delta.evaluate_move(current, move, child)
        assert (cold is None) == (out is None), move.describe()
        if cold is None:
            continue
        assert occupancy(cold.schedule) == occupancy(out.schedule)
        assert cold.metrics == out.metrics
        assert trace_identity(cold.trace) == trace_identity(out.trace)
        current = out


# ----------------------------------------------------------------------
# seeded strategy runs: byte-identical with delta on/off and any jobs
# ----------------------------------------------------------------------
class TestSeededStrategyEquivalence:
    @pytest.mark.parametrize("family_name", ["uniform-baseline", "pipeline"])
    def test_mh_identical_delta_on_off(self, family_name):
        from repro.experiments.runner import design_identity

        family = families.get_family(family_name)
        spec = family.build(family.smallest_preset, seed=1).spec()
        reference = design_identity(MappingHeuristic().design(spec))
        assert (
            design_identity(MappingHeuristic(use_delta=False).design(spec))
            == reference
        )
        assert (
            design_identity(MappingHeuristic(jobs=2).design(spec)) == reference
        )

    def test_sa_identical_delta_on_off(self, spec):
        from repro.experiments.runner import design_identity

        base = SimulatedAnnealing(iterations=120, seed=3)
        reference = design_identity(base.design(spec))
        for variant in (
            SimulatedAnnealing(iterations=120, seed=3, use_delta=False),
            SimulatedAnnealing(iterations=120, seed=3, use_cache=False),
            SimulatedAnnealing(iterations=120, seed=3, jobs=2),
        ):
            assert design_identity(variant.design(spec)) == reference