"""Fixtures for the evaluation-engine tests: one small seeded scenario."""

from __future__ import annotations

import pytest

from repro.core.strategy import DesignSpec
from repro.gen.scenario import Scenario, ScenarioParams, build_scenario


@pytest.fixture(scope="module")
def scenario() -> Scenario:
    """A small but non-trivial scenario (frozen base + current app)."""
    return build_scenario(
        ScenarioParams(n_existing=12, n_current=8), seed=3
    )


@pytest.fixture(scope="module")
def spec(scenario) -> DesignSpec:
    return scenario.spec()
