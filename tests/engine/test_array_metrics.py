"""Equivalence suite for the array-native metric kernel.

The contract under test: :mod:`repro.core.array_metrics` prices a
finished :class:`~repro.sched.arrays.ArrayRunState` **byte-identically**
to the pinned object kernel pricing the decoded schedule -- every
metric value, the objective, and failure reporting match across all
registered scenario families, through chained delta generations (memo
reuse), under every binpack policy, with the cache on or off and with
``--jobs 2``.  Plus the lazy-decode boundary: the hot path never builds
an object schedule, :attr:`EvaluatedDesign.schedule` decodes on demand
(also after a pickle round trip and for columnless states), and
:meth:`ArraySpec.decode_schedule` refuses columnless states loudly.
"""

from __future__ import annotations

import functools
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binpack import best_fit, best_fit_unplaced_total_hist
from repro.core.initial_mapping import InitialMapper
from repro.core.mapping_heuristic import MappingHeuristic
from repro.core.array_metrics import (
    ArrayMetricsMemo,
    evaluate_state,
    evaluate_state_delta,
)
from repro.core.metrics import ObjectiveWeights, evaluate_design
from repro.core.simulated_annealing import SimulatedAnnealing
from repro.core.transformations import (
    CandidateDesign,
    DelayMessage,
    RemapProcess,
    SwapPriorities,
    remap_moves,
)
from repro.engine import evaluate_candidate
from repro.engine.compiled_spec import CompiledSpec
from repro.engine.delta import DeltaEvaluator
from repro.engine.engine import EvaluationEngine
from repro.engine.evaluation import EvaluatedDesign
from repro.gen import families
from repro.sched.list_scheduler import ListScheduler


@functools.lru_cache(maxsize=32)
def _cell(family_name: str, seed: int = 1):
    """Spec, both compiled cores and the IM design of one family."""
    family = families.get_family(family_name)
    spec = family.build(family.smallest_preset, seed=seed).spec()
    compiled_obj = CompiledSpec(spec, engine_core="object")
    compiled_arr = CompiledSpec(spec, engine_core="array")
    scheduler = ListScheduler(spec.architecture)
    outcome = InitialMapper(spec.architecture).try_map_and_schedule(
        spec.current, base=spec.base_schedule, compiled=compiled_obj
    )
    assert outcome is not None
    design = CandidateDesign(
        outcome[0], dict(compiled_obj.default_priorities)
    )
    return spec, compiled_obj, compiled_arr, scheduler, design


def _neighbourhood(spec, design, limit_delays: int = 6):
    """The design itself plus every remap, swaps and message delays."""
    pids = [p.id for p in spec.current.processes]
    moves = list(remap_moves(design.mapping, pids))
    moves.extend(SwapPriorities(a, b) for a, b in zip(pids, pids[1:]))
    moves.extend(
        DelayMessage(m.id, delta)
        for m in spec.current.messages[:limit_delays]
        for delta in (+1, -1)
    )
    return [design] + [m.apply(design) for m in moves]


# ----------------------------------------------------------------------
# cold equivalence: array metrics == object metrics on every family
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family_name", families.family_names())
def test_cold_metrics_equal_object_kernel(family_name):
    """Values, objective and validity match over the IM neighbourhood."""
    spec, compiled_obj, compiled_arr, scheduler, design = _cell(family_name)
    arrays = compiled_arr.arrays
    compared = 0
    for child in _neighbourhood(spec, design):
        state = arrays.schedule_design(child, columns=True)
        cold = evaluate_candidate(spec, compiled_obj, scheduler, child)
        assert state.success == (cold is not None)
        if cold is None:
            continue
        metrics = evaluate_state(arrays, state, spec.future, spec.weights)
        assert metrics == cold.metrics
        compared += 1
    assert compared > 0


@pytest.mark.parametrize("policy", ["first-fit", "worst-fit"])
def test_ablation_policies_equal_object_kernel(policy):
    """The non-default packing policies price identically too."""
    spec, compiled_obj, compiled_arr, scheduler, design = _cell(
        "uniform-baseline"
    )
    arrays = compiled_arr.arrays
    weights = ObjectiveWeights(binpack_policy=policy)
    compared = 0
    for child in _neighbourhood(spec, design)[:12]:
        state = arrays.schedule_design(child, columns=True)
        if not state.success:
            continue
        schedule = arrays.decode_schedule(state)
        assert evaluate_state(
            arrays, state, spec.future, weights
        ) == evaluate_design(schedule, spec.future, weights)
        compared += 1
    assert compared > 0


def test_failure_reasons_without_decode():
    """Invalid candidates report the object kernel's exact failure
    string straight from the columnless state -- no decode, no trace."""
    from repro.gen.scenario import ScenarioParams, build_scenario

    spec = build_scenario(
        ScenarioParams(n_existing=14, n_current=10, current_utilization=0.3),
        seed=4,
    ).spec()
    compiled = CompiledSpec(spec, engine_core="array")
    arrays = compiled.arrays
    scheduler = ListScheduler(spec.architecture)
    outcome = InitialMapper(spec.architecture).try_map_and_schedule(
        spec.current, base=spec.base_schedule, compiled=compiled
    )
    design = CandidateDesign(outcome[0], dict(compiled.default_priorities))
    failures = 0
    for child in _neighbourhood(spec, design, limit_delays=20):
        state = arrays.schedule_design(child)
        cold = scheduler.try_schedule(
            spec.current,
            child.mapping,
            priorities=child.priorities,
            message_delays=child.message_delays,
            compiled=compiled,
        )
        assert state.success == cold.success
        if cold.success:
            continue
        assert not state.columns, "hot-path state recorded trace columns"
        assert state.failure_reason == cold.failure_reason
        failures += 1
    assert failures > 0, "scenario produced no invalid children"


# ----------------------------------------------------------------------
# delta generations: memo chaining parent -> child -> grandchild
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family_name", families.family_names())
@settings(max_examples=6, deadline=None)
@given(data=st.data())
def test_chained_delta_generations_stay_identical(family_name, data):
    """Random move chains reusing the parent memo at every generation
    price exactly like a cold object evaluation of the same design."""
    spec, compiled_obj, compiled_arr, scheduler, design = _cell(family_name)
    arrays = compiled_arr.arrays
    delta = DeltaEvaluator(compiled_arr, scheduler)
    parent = evaluate_candidate(
        spec, compiled_arr, scheduler, design, record_trace=True
    )
    assert parent is not None
    assert isinstance(parent.memo, ArrayMetricsMemo)
    pids = [p.id for p in spec.current.processes]
    messages = [m.id for m in spec.current.messages]
    current = parent
    for _ in range(data.draw(st.integers(1, 4), label="generations")):
        kind = data.draw(
            st.sampled_from(
                ["remap", "swap", "delay"] if messages else ["remap", "swap"]
            ),
            label="kind",
        )
        if kind == "remap":
            pid = data.draw(st.sampled_from(pids), label="pid")
            options = [
                n
                for n in spec.current.process(pid).allowed_nodes
                if n != current.design.mapping.node_of(pid)
            ]
            if not options:
                continue
            move = RemapProcess(
                pid, data.draw(st.sampled_from(options), label="node")
            )
        elif kind == "swap":
            if len(pids) < 2:
                continue
            first = data.draw(st.sampled_from(pids), label="first")
            second = data.draw(st.sampled_from(pids), label="second")
            if first == second:
                continue
            move = SwapPriorities(first, second)
        else:
            move = DelayMessage(
                data.draw(st.sampled_from(messages), label="message"),
                data.draw(st.sampled_from([1, -1]), label="delta"),
            )
        child = move.apply(current.design)
        out, _ = delta.evaluate_move(current, move, child)
        cold = evaluate_candidate(spec, compiled_obj, scheduler, child)
        assert (cold is None) == (out is None), move.describe()
        if cold is None:
            continue
        assert out.metrics == cold.metrics
        assert isinstance(out.memo, ArrayMetricsMemo)
        current = out


def test_clean_mask_reuse_matches_cold_pricing():
    """Pricing with the parent memo + clean mask equals cold pricing of
    the same state (the memo never leaks stale inputs)."""
    spec, compiled_obj, compiled_arr, scheduler, design = _cell("pipeline")
    arrays = compiled_arr.arrays
    parent_state = arrays.schedule_design(design, record=True)
    assert parent_state.success
    _, parent_memo = evaluate_state_delta(
        arrays, parent_state, spec.future, spec.weights
    )
    compared = 0
    for child in _neighbourhood(spec, design)[1:16]:
        state = arrays.schedule_design(child, columns=True)
        if not state.success:
            continue
        mask, bus_clean = arrays.clean_mask(state, parent_state)
        with_memo, _ = evaluate_state_delta(
            arrays,
            state,
            spec.future,
            spec.weights,
            parent_memo=parent_memo,
            clean_mask=mask,
            bus_clean=bus_clean,
        )
        cold, _ = evaluate_state_delta(arrays, state, spec.future, spec.weights)
        assert with_memo == cold
        compared += 1
    assert compared > 0


# ----------------------------------------------------------------------
# engine-level determinism: cache on/off, jobs, cores
# ----------------------------------------------------------------------
def _engine_metrics(spec, design, moves, **kwargs):
    with EvaluationEngine(spec, **kwargs) as engine:
        parent = engine.evaluate(design)
        outcomes = engine.evaluate_moves(parent, moves)
        return [o.metrics if o is not None else None for o in outcomes]


def test_engine_variants_price_identically():
    """Cache on/off, jobs=2 and both cores return equal metric lists."""
    spec, compiled_obj, compiled_arr, scheduler, design = _cell(
        "uniform-baseline"
    )
    pids = [p.id for p in spec.current.processes]
    moves = list(remap_moves(design.mapping, pids))[:20]
    reference = _engine_metrics(spec, design, moves, engine_core="object")
    for kwargs in (
        {"engine_core": "array"},
        {"engine_core": "array", "use_cache": False},
        {"engine_core": "array", "jobs": 2, "parallel_threshold": 0},
        {"engine_core": "array", "use_delta": False},
    ):
        assert _engine_metrics(spec, design, moves, **kwargs) == reference


class TestSeededStrategyByteIdentity:
    """Seeded searches land on the same design under either core --
    i.e. the array metric path never perturbs a single comparison."""

    def test_mh(self):
        from repro.experiments.runner import design_identity

        family = families.get_family("hetero-mixed")
        spec = family.build(family.smallest_preset, seed=2).spec()
        reference = design_identity(
            MappingHeuristic(engine_core="object").design(spec)
        )
        for variant in (
            MappingHeuristic(engine_core="array"),
            MappingHeuristic(engine_core="array", jobs=2),
        ):
            assert design_identity(variant.design(spec)) == reference

    def test_sa(self):
        from repro.experiments.runner import design_identity

        family = families.get_family("bursty")
        spec = family.build(family.smallest_preset, seed=1).spec()
        reference = design_identity(
            SimulatedAnnealing(
                iterations=100, seed=7, engine_core="object"
            ).design(spec)
        )
        assert (
            design_identity(
                SimulatedAnnealing(
                    iterations=100, seed=7, engine_core="array"
                ).design(spec)
            )
            == reference
        )


# ----------------------------------------------------------------------
# histogram best-fit == reference best-fit
# ----------------------------------------------------------------------
class TestHistPacking:
    def _runs(self, objects):
        ordered = sorted(objects, reverse=True)
        runs = []
        for size in ordered:
            if runs and runs[-1][0] == size:
                runs[-1] = (size, runs[-1][1] + 1)
            else:
                runs.append((size, 1))
        return ordered, runs

    @given(
        objects=st.lists(st.integers(1, 40), min_size=0, max_size=30),
        bins=st.lists(st.integers(0, 60), min_size=0, max_size=30),
    )
    @settings(max_examples=300, deadline=None)
    def test_equals_reference_best_fit(self, objects, bins):
        ordered, runs = self._runs(objects)
        hist: dict = {}
        for cap in bins:
            hist[cap] = hist.get(cap, 0) + 1
        expected = best_fit(ordered, bins).unplaced_total if objects else 0
        frozen = dict(hist)
        assert best_fit_unplaced_total_hist(runs, hist) == expected
        assert hist == frozen, "consume=False mutated the input histogram"
        assert (
            best_fit_unplaced_total_hist(runs, hist, consume=True) == expected
        )

    def test_remainder_classes_chain(self):
        """Remainder bins re-enter later (smaller-size) runs."""
        # 3 bins of 10: the 7s drain them to 3s, which then host the 3s.
        runs = [(7, 3), (3, 4)]
        assert best_fit_unplaced_total_hist(runs, {10: 3}) == (
            best_fit([7, 7, 7, 3, 3, 3, 3], [10, 10, 10]).unplaced_total
        )


# ----------------------------------------------------------------------
# the lazy-decode boundary
# ----------------------------------------------------------------------
class TestLazyDecode:
    def _outcome(self, record_trace: bool = False):
        spec, compiled_obj, compiled_arr, scheduler, design = _cell(
            "uniform-baseline"
        )
        outcome = evaluate_candidate(
            spec, compiled_arr, scheduler, design, record_trace=record_trace
        )
        assert outcome is not None
        return spec, compiled_obj, compiled_arr, scheduler, design, outcome

    def test_hot_path_skips_decode_and_columns(self):
        _, _, _, _, _, outcome = self._outcome()
        assert outcome._schedule is None
        assert not outcome._state.columns

    def test_lazy_schedule_equals_eager_object_schedule(self):
        spec, compiled_obj, _, scheduler, design, outcome = self._outcome()
        eager = evaluate_candidate(spec, compiled_obj, scheduler, design)
        lazy = outcome.schedule
        assert outcome._schedule is lazy, "decode was not cached"
        assert {
            nid: sorted(
                (e.process_id, e.instance, e.start, e.end)
                for e in lazy.entries_on(nid)
            )
            for nid in lazy.architecture.node_ids
        } == {
            nid: sorted(
                (e.process_id, e.instance, e.start, e.end)
                for e in eager.schedule.entries_on(nid)
            )
            for nid in eager.schedule.architecture.node_ids
        }

    def test_traced_state_decodes_without_rerun(self):
        """A record_trace outcome owns columns; decode must not re-run
        the pass (the decoded schedule comes from the same state)."""
        _, _, compiled_arr, _, _, outcome = self._outcome(record_trace=True)
        assert outcome._state.columns
        schedule = outcome.schedule
        assert schedule is outcome._schedule  # decoded and cached

    def test_pickle_round_trip_drops_and_regains_substrate(self):
        _, _, compiled_arr, _, _, outcome = self._outcome()
        clone = pickle.loads(pickle.dumps(outcome))
        assert clone._arrays is None and clone._timings is None
        with pytest.raises(ValueError, match="decode substrate"):
            clone.schedule
        clone._arrays = compiled_arr.arrays
        assert clone.schedule is not None
        assert clone.metrics == outcome.metrics

    def test_decode_schedule_refuses_columnless_states(self):
        spec, _, compiled_arr, scheduler, design, _ = self._outcome()
        arrays = compiled_arr.arrays
        state = arrays.schedule_design(design)  # hot path: no columns
        assert state.success and not state.columns
        with pytest.raises(ValueError, match="columnless"):
            arrays.decode_schedule(state)

    def test_constructor_refuses_scheduleless_without_state(self):
        _, _, _, _, _, outcome = self._outcome()
        with pytest.raises(ValueError, match="schedule or an array state"):
            EvaluatedDesign(outcome.design, None, outcome.metrics)
