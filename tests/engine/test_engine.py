"""Tests for the EvaluationEngine facade and strategy integration."""


from repro.core.adhoc import AdHocStrategy
from repro.core.initial_mapping import InitialMapper
from repro.core.strategy import DesignEvaluator
from repro.core.transformations import CandidateDesign
from repro.engine import EvaluationEngine
from repro.sched.priorities import hcp_priorities


class TestEvaluationEngine:
    def test_evaluate_counts(self, spec):
        with EvaluationEngine(spec) as engine:
            mapper = InitialMapper(spec.architecture)
            mapping, _ = mapper.try_map_and_schedule(
                spec.current, base=spec.base_schedule
            )
            design = CandidateDesign(
                mapping, hcp_priorities(spec.current, spec.architecture.bus)
            )
            out = engine.evaluate(design)
            assert out is not None and out.objective >= 0
            assert engine.evaluations == 1
            stats = engine.cache_stats()
            assert (stats.hits, stats.misses) == (0, 1)

    def test_cache_disabled_stats_zero(self, spec):
        with EvaluationEngine(spec, use_cache=False) as engine:
            stats = engine.cache_stats()
            assert (stats.hits, stats.misses, stats.entries) == (0, 0, 0)

    def test_price_matches_metrics_path(self, spec):
        from repro.core.metrics import evaluate_design

        mapper = InitialMapper(spec.architecture)
        outcome = mapper.try_map_and_schedule(
            spec.current, base=spec.base_schedule
        )
        assert outcome is not None
        _, schedule = outcome
        with EvaluationEngine(spec) as engine:
            assert (
                engine.price(schedule).objective
                == evaluate_design(schedule, spec.future, spec.weights).objective
            )

    def test_facade_exposes_compiled(self, spec):
        with DesignEvaluator(spec) as evaluator:
            assert evaluator.compiled is evaluator.engine.compiled
            assert evaluator.compiled.total_jobs > 0


class TestAdHocOnEngine:
    def test_ah_unchanged_by_engine_knobs(self, spec):
        plain = AdHocStrategy().design(spec)
        tuned = AdHocStrategy(use_cache=False, jobs=4).design(spec)
        assert plain.valid and tuned.valid
        assert plain.objective == tuned.objective
        assert plain.mapping.as_dict() == tuned.mapping.as_dict()
        assert plain.evaluations == tuned.evaluations == 1


class TestEngineCounters:
    def test_snapshot_and_subtraction(self, spec):
        from repro.core.initial_mapping import InitialMapper
        from repro.core.strategy import DesignEvaluator
        from repro.core.transformations import CandidateDesign
        from repro.engine import EngineCounters

        with DesignEvaluator(spec) as evaluator:
            mapper = InitialMapper(spec.architecture)
            mapping, _ = mapper.try_map_and_schedule(
                spec.current,
                base=spec.base_schedule,
                compiled=evaluator.compiled,
            )
            designs = [
                CandidateDesign(
                    mapping, dict(evaluator.compiled.default_priorities)
                )
                for _ in range(3)
            ]
            before = evaluator.counters()
            assert before == EngineCounters(0, 0, 0, 0, 0)
            evaluator.evaluate_many(designs)
            evaluator.evaluate_many(designs)  # second pass: pure cache hits
            after = evaluator.counters()
            window = after - before
            assert window.evaluations == 2 * len(designs)
            assert window.cache_hits >= len(designs)
            assert (
                window.cache_hits + window.cache_misses == window.evaluations
            )
        # Counters stay readable after close (stats recording).
        assert evaluator.counters() == after
