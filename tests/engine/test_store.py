"""Tests for the persistent result store: round trips, degradation,
the not-found vs cached-invalid distinction, and worker read-through."""

import json
import sqlite3
import warnings

import pytest

from repro.core.initial_mapping import InitialMapper
from repro.core.strategy import DesignEvaluator
from repro.core.transformations import CandidateDesign
from repro.engine import batch as batch_module
from repro.engine.compiled_spec import CompiledSpec
from repro.engine.store import (
    SCHEMA_VERSION,
    MemoryResultStore,
    SqliteResultStore,
    make_store,
)
from repro.sched.priorities import hcp_priorities
from repro.serialize import schedule_to_dict


@pytest.fixture(scope="module")
def compiled(spec):
    return CompiledSpec(spec)


@pytest.fixture(scope="module")
def im_design(spec):
    mapper = InitialMapper(spec.architecture)
    mapping, _ = mapper.try_map_and_schedule(
        spec.current, base=spec.base_schedule
    )
    return CandidateDesign(
        mapping, hcp_priorities(spec.current, spec.architecture.bus)
    )


def _schedule_json(outcome):
    return json.dumps(schedule_to_dict(outcome.schedule), sort_keys=True)


class TestSqliteStore:
    def test_design_round_trip_across_instances(
        self, spec, compiled, im_design, tmp_path
    ):
        """A stored design is served back metrics-identical from a fresh
        process-like open, and its schedule re-derives byte-identically."""
        path = tmp_path / "store.sqlite"
        signature = compiled.signature(im_design)
        writer = SqliteResultStore(path, compiled=compiled)
        cold = batch_module.evaluate_candidate(
            spec, compiled, batch_module.ListScheduler(spec.architecture),
            im_design,
        )
        assert cold is not None
        writer.put(signature, cold)
        writer.close()

        reader = SqliteResultStore(path, compiled=compiled)
        found, warm = reader.get(signature)
        assert found
        assert warm.metrics == cold.metrics
        assert warm.design.mapping.as_dict() == im_design.mapping.as_dict()
        assert dict(warm.design.priorities) == dict(im_design.priorities)
        # The lazily re-derived schedule equals the cold one exactly.
        assert _schedule_json(warm) == _schedule_json(cold)
        assert reader.stats().hits == 1
        reader.close()

    def test_invalid_verdict_distinct_from_not_found(
        self, compiled, im_design, tmp_path
    ):
        """``None`` is a first-class stored outcome: a warm open must
        report it as *found*, never as a miss to re-evaluate."""
        path = tmp_path / "store.sqlite"
        signature = compiled.signature(im_design)
        writer = SqliteResultStore(path, compiled=compiled)
        writer.put(signature, None)
        writer.close()

        reader = SqliteResultStore(path, compiled=compiled)
        found, outcome = reader.get(signature)
        assert found and outcome is None
        missing = (signature[0], signature[1], (("ghost", 1),))
        assert reader.get(missing) == (False, None)
        assert reader.stats().hits == 1
        assert reader.stats().misses == 1
        reader.close()

    def test_pickle_payloads_round_trip(self, tmp_path):
        path = tmp_path / "store.sqlite"
        writer = SqliteResultStore(path)
        writer.put(("k",), {"value": 42})
        writer.close()
        reader = SqliteResultStore(path)
        assert reader.get(("k",)) == (True, {"value": 42})
        reader.close()

    def test_scenarios_are_isolated(self, tmp_path):
        path = tmp_path / "store.sqlite"
        a = SqliteResultStore(path, scenario="scenario-a")
        b = SqliteResultStore(path, scenario="scenario-b", read_only=False)
        a.put(("k",), "from-a")
        a.close()
        assert b.get(("k",)) == (False, None)
        b.close()
        again = SqliteResultStore(path, scenario="scenario-a")
        assert again.get(("k",)) == (True, "from-a")
        again.close()

    def test_commit_is_the_visibility_boundary(self, tmp_path):
        """Buffered rows become durable (and visible to other
        connections) only at commit, in one batch."""
        path = tmp_path / "store.sqlite"
        writer = SqliteResultStore(path)
        writer.put(("a",), 1)
        writer.put(("b",), 2)
        assert writer.stats().writes == 0
        reader = SqliteResultStore(path, read_only=True)
        assert reader.get(("a",)) == (False, None)
        writer.commit()
        assert writer.stats().writes == 2
        assert reader.get(("a",)) == (True, 1)
        assert reader.get(("b",)) == (True, 2)
        reader.close()
        writer.close()

    def test_lru_eviction_mirrors_to_database(self, tmp_path):
        """An entry the resident LRU evicts must miss after a restart
        too -- within-run and across-run views stay consistent."""
        path = tmp_path / "store.sqlite"
        store = SqliteResultStore(path, max_entries=1)
        store.put(("a",), 1)
        store.put(("b",), 2)  # evicts "a" from both tiers
        store.close()
        reopened = SqliteResultStore(path)
        assert reopened.get(("a",)) == (False, None)
        assert reopened.get(("b",)) == (True, 2)
        reopened.close()

    def test_clear_scopes_to_scenario(self, tmp_path):
        path = tmp_path / "store.sqlite"
        mine = SqliteResultStore(path, scenario="mine")
        other = SqliteResultStore(path, scenario="other", read_only=False)
        mine.put(("k",), 1)
        mine.commit()
        other.put(("k",), 2)
        other.commit()
        other.close()
        mine.clear()
        mine.close()
        assert SqliteResultStore(path, scenario="mine").get(("k",)) == (
            False, None,
        )
        assert SqliteResultStore(path, scenario="other").get(("k",)) == (
            True, 2,
        )

    def test_corrupt_file_degrades_loudly_to_memory(self, tmp_path):
        path = tmp_path / "store.sqlite"
        path.write_bytes(b"this is not a sqlite database at all")
        with pytest.warns(RuntimeWarning, match="memory-only"):
            store = SqliteResultStore(path)
        assert not store.persistent
        # Memory-only semantics keep working.
        store.put(("k",), 7)
        assert store.get(("k",)) == (True, 7)
        store.commit()
        store.close()
        assert store.stats().writes == 0

    def test_schema_version_mismatch_degrades(self, tmp_path):
        path = tmp_path / "store.sqlite"
        conn = sqlite3.connect(path)
        conn.execute(
            "CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL)"
        )
        conn.execute(
            "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
            (str(SCHEMA_VERSION + 1),),
        )
        conn.commit()
        conn.close()
        with pytest.warns(RuntimeWarning, match="schema version"):
            store = SqliteResultStore(path)
        assert not store.persistent

    def test_read_only_missing_file_degrades(self, tmp_path):
        with pytest.warns(RuntimeWarning, match="memory-only"):
            store = SqliteResultStore(
                tmp_path / "missing.sqlite", read_only=True
            )
        assert not store.persistent

    def test_read_only_never_writes(self, tmp_path):
        path = tmp_path / "store.sqlite"
        writer = SqliteResultStore(path)
        writer.put(("a",), 1)
        writer.close()
        reader = SqliteResultStore(path, read_only=True)
        assert reader.get(("a",)) == (True, 1)
        reader.put(("b",), 2)  # resident tier only
        reader.commit()
        assert reader.stats().writes == 0
        reader.close()
        fresh = SqliteResultStore(path)
        assert fresh.get(("b",)) == (False, None)
        fresh.close()

    def test_make_store_validation(self, compiled, tmp_path):
        assert isinstance(make_store("memory", None, compiled), MemoryResultStore)
        store = make_store(
            "sqlite", tmp_path / "store.sqlite", compiled
        )
        assert isinstance(store, SqliteResultStore)
        store.close()
        with pytest.raises(ValueError, match="requires a cache_path"):
            make_store("sqlite", None, compiled)
        with pytest.raises(ValueError, match="unknown cache_store"):
            make_store("redis", None, compiled)


class TestEngineStoreIntegration:
    def test_warm_restart_serves_from_store(self, spec, im_design, tmp_path):
        path = str(tmp_path / "store.sqlite")
        with DesignEvaluator(
            spec, cache_store="sqlite", cache_path=path
        ) as cold_eval:
            cold = cold_eval.evaluate(im_design)
            assert cold_eval.store_hits == 0
            assert cold_eval.store_misses == 1
            assert cold_eval.store_writes >= 1
            cold_json = _schedule_json(cold)
        with DesignEvaluator(
            spec, cache_store="sqlite", cache_path=path
        ) as warm_eval:
            warm = warm_eval.evaluate(im_design)
            assert warm_eval.store_hits == 1
            assert warm_eval.store_misses == 0
            assert warm.metrics == cold.metrics
            assert _schedule_json(warm) == cold_json

    def test_invalid_verdict_survives_restart(self, spec, im_design, tmp_path):
        """Regression (not-found vs cached-invalid): an invalid design's
        ``None`` verdict must be served warm, not re-solved."""
        overloaded = None
        nodes = sorted(
            {n for p in spec.current.processes for n in p.allowed_nodes}
        )
        for node in nodes:
            candidate = CandidateDesign(
                im_design.mapping.copy(), dict(im_design.priorities)
            )
            for p in spec.current.processes:
                if node in p.allowed_nodes:
                    candidate.mapping.assign(p.id, node)
            with DesignEvaluator(spec, use_cache=False) as probe:
                if probe.evaluate(candidate) is None:
                    overloaded = candidate
                    break
        assert overloaded is not None, "no overloaded candidate found"
        path = str(tmp_path / "store.sqlite")
        with DesignEvaluator(
            spec, cache_store="sqlite", cache_path=path
        ) as cold_eval:
            assert cold_eval.evaluate(overloaded) is None
        with DesignEvaluator(
            spec, cache_store="sqlite", cache_path=path
        ) as warm_eval:
            assert warm_eval.evaluate(overloaded) is None
            assert warm_eval.store_hits == 1
            assert warm_eval.store_misses == 0

    def test_invalid_design_looked_up_twice_hits_cache(
        self, spec, im_design, store_kwargs_local
    ):
        """Regression: the second lookup of a cached-invalid design must
        be a cache hit (one miss total), not a silent re-evaluation."""
        mutated = CandidateDesign(
            im_design.mapping.copy(), dict(im_design.priorities)
        )
        with DesignEvaluator(spec, **store_kwargs_local) as evaluator:
            first = evaluator.evaluate(mutated)
            second = evaluator.evaluate(mutated)
            assert first is second or (first is None and second is None)
            assert evaluator.cache_misses == 1
            assert evaluator.cache_hits == 1

    def test_workers_read_through_warm_store(self, spec, im_design, tmp_path):
        path = str(tmp_path / "store.sqlite")
        designs = [im_design]
        for proc in spec.current.processes[:4]:
            for node in proc.allowed_nodes:
                if node != im_design.mapping.node_of(proc.id):
                    from repro.core.transformations import RemapProcess

                    designs.append(
                        RemapProcess(proc.id, node).apply(im_design)
                    )
        with DesignEvaluator(
            spec, cache_store="sqlite", cache_path=path
        ) as primer:
            baseline = primer.evaluate_many(designs)
        with DesignEvaluator(
            spec,
            jobs=2,
            parallel_threshold=0,
            cache_store="sqlite",
            cache_path=path,
        ) as pooled:
            # Distinct cache: every candidate misses the resident tiers
            # and is either served by a worker's read-only store view or
            # by the parent store's own probe.
            warm = pooled.evaluate_many(designs)
            assert pooled.store_hits == len(designs)
            assert pooled.store_misses == 0
        for a, b in zip(baseline, warm):
            assert (a is None) == (b is None)
            if a is not None:
                assert a.metrics == b.metrics


@pytest.fixture(params=["memory", "sqlite"])
def store_kwargs_local(request, tmp_path):
    if request.param == "memory":
        return {"cache_store": "memory"}
    return {
        "cache_store": "sqlite",
        "cache_path": str(tmp_path / "engine.sqlite"),
    }


class TestResidentParentSentinel:
    def test_invalid_parent_cold_built_once(self, spec, monkeypatch):
        """Regression: a resident parent whose verdict is ``None``
        (invalid) must not be rebuilt on every chunk naming it."""
        batch_module._init_worker(spec, True, "array")
        try:
            calls = {"n": 0}

            def counting_none(*args, **kwargs):
                calls["n"] += 1
                return None

            monkeypatch.setattr(
                batch_module, "evaluate_candidate", counting_none
            )
            mapper = InitialMapper(spec.architecture)
            mapping, _ = mapper.try_map_and_schedule(
                spec.current, base=spec.base_schedule
            )
            design = CandidateDesign(
                mapping, hcp_priorities(spec.current, spec.architecture.bus)
            )
            compiled = batch_module._WORKER_STATE[1]
            signature = compiled.signature(design)
            payload = batch_module._to_payload(design)
            assert batch_module._resident_parent(signature, payload) is None
            assert batch_module._resident_parent(signature, payload) is None
            assert calls["n"] == 1
        finally:
            batch_module._WORKER_STATE = None
