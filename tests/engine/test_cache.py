"""Tests for evaluation memoization: accounting, verdicts, equivalence.

The unit suite runs over *both* result-store backends (memory and
sqlite): the PR's counter/LRU contract -- every hit through ``lookup``,
``__contains__`` accounting-free, batch commits in order -- must hold
byte-for-byte whichever store sits underneath the cache.
"""

import pytest

from repro.core.initial_mapping import InitialMapper
from repro.core.strategy import DesignEvaluator, make_strategy
from repro.core.transformations import CandidateDesign, RemapProcess
from repro.engine.cache import EvaluationCache
from repro.engine.store import DEFAULT_MAX_ENTRIES, SqliteResultStore
from repro.sched.priorities import hcp_priorities


@pytest.fixture(scope="module")
def im_design(spec):
    mapper = InitialMapper(spec.architecture)
    mapping, _ = mapper.try_map_and_schedule(
        spec.current, base=spec.base_schedule
    )
    return CandidateDesign(
        mapping, hcp_priorities(spec.current, spec.architecture.bus)
    )


@pytest.fixture(params=["memory", "sqlite"])
def make_cache(request, tmp_path):
    """EvaluationCache factory parameterized over both store backends."""
    counter = {"n": 0}

    def factory(max_entries=DEFAULT_MAX_ENTRIES):
        if request.param == "memory":
            return EvaluationCache(max_entries=max_entries)
        counter["n"] += 1
        store = SqliteResultStore(
            tmp_path / f"store{counter['n']}.sqlite", max_entries=max_entries
        )
        return EvaluationCache(store=store)

    return factory


class TestEvaluationCache:
    def test_miss_then_hit(self, make_cache):
        cache = make_cache()
        found, _ = cache.lookup(("a",))
        assert not found
        cache.store(("a",), "outcome")
        found, outcome = cache.lookup(("a",))
        assert found and outcome == "outcome"
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_invalid_verdict_is_cached(self, make_cache):
        cache = make_cache()
        cache.store(("bad",), None)
        found, outcome = cache.lookup(("bad",))
        assert found and outcome is None

    def test_lru_eviction(self, make_cache):
        cache = make_cache(max_entries=2)
        cache.store(("a",), 1)
        cache.store(("b",), 2)
        cache.lookup(("a",))  # refresh "a"; "b" becomes LRU
        cache.store(("c",), 3)
        assert cache.lookup(("a",))[0]
        assert not cache.lookup(("b",))[0]
        assert cache.lookup(("c",))[0]
        assert len(cache) == 2

    def test_bad_max_entries_rejected(self, make_cache):
        with pytest.raises(ValueError):
            make_cache(max_entries=0)

    def test_contains_is_accounting_free(self, make_cache):
        """The membership peek must not perturb counters or recency."""
        cache = make_cache(max_entries=2)
        cache.store(("a",), 1)
        cache.store(("b",), 2)
        assert ("a",) in cache
        assert ("missing",) not in cache
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (0, 0)
        # "a" was peeked but not used: it is still the LRU entry.
        cache.store(("c",), 3)
        assert not cache.lookup(("a",))[0]
        assert cache.lookup(("b",))[0]


@pytest.fixture(params=["memory", "sqlite"])
def store_kwargs(request, tmp_path):
    """Engine-level backend selection (the --cache-store switch)."""
    if request.param == "memory":
        return {"cache_store": "memory"}
    return {
        "cache_store": "sqlite",
        "cache_path": str(tmp_path / "engine.sqlite"),
    }


class TestEngineCaching:
    def test_repeat_evaluation_hits(self, spec, im_design, store_kwargs):
        with DesignEvaluator(spec, **store_kwargs) as evaluator:
            first = evaluator.evaluate(im_design)
            second = evaluator.evaluate(im_design)
            assert first is second
            assert evaluator.evaluations == 2
            assert evaluator.cache_hits == 1
            assert evaluator.cache_misses == 1

    def test_copies_share_cache_entry(self, spec, im_design, store_kwargs):
        with DesignEvaluator(spec, **store_kwargs) as evaluator:
            first = evaluator.evaluate(im_design)
            second = evaluator.evaluate(im_design.copy())
            assert first is second
            assert evaluator.cache_hits == 1

    def test_invalid_candidates_cached(self, spec, im_design, store_kwargs):
        # An overloaded single-node mapping that cannot meet deadlines
        # still gets its (None) verdict memoized.
        with DesignEvaluator(spec, **store_kwargs) as evaluator:
            evaluator.evaluate(im_design)
            move = None
            for proc in spec.current.processes:
                others = [
                    n
                    for n in proc.allowed_nodes
                    if n != im_design.mapping.node_of(proc.id)
                ]
                if others:
                    move = RemapProcess(proc.id, others[0])
                    break
            assert move is not None
            mutated = move.apply(im_design)
            a = evaluator.evaluate(mutated)
            b = evaluator.evaluate(mutated)
            assert a is b  # cached, whatever the verdict

    def test_batch_duplicate_hits_keep_lru_order(
        self, spec, im_design, store_kwargs
    ):
        """Regression: in-batch duplicates must refresh recency, so the
        duplicated entry survives eviction over an older distinct one."""
        move = None
        for proc in spec.current.processes:
            others = [
                n
                for n in proc.allowed_nodes
                if n != im_design.mapping.node_of(proc.id)
            ]
            if others:
                move = RemapProcess(proc.id, others[0])
                break
        assert move is not None
        other = move.apply(im_design)
        with DesignEvaluator(
            spec, max_cache_entries=2, **store_kwargs
        ) as evaluator:
            # Batch: [A, B, A] -> stores A then B, then the duplicate
            # hit on A makes B the least recently used entry.
            evaluator.evaluate_many([im_design, other, im_design])
            assert evaluator.cache_misses == 2
            assert evaluator.cache_hits == 1
            cache = evaluator.engine.cache
            sig_a = evaluator.compiled.signature(im_design)
            sig_b = evaluator.compiled.signature(other)
            assert list(cache._store) == [sig_b, sig_a]

    def test_batch_accounting_matches_serial_lru_order(
        self, spec, im_design, store_kwargs, tmp_path
    ):
        """[A, A, B] must leave LRU order [A, B] -- exactly what three
        single evaluate() calls produce (A last used before B's store)."""
        move = None
        for proc in spec.current.processes:
            others = [
                n
                for n in proc.allowed_nodes
                if n != im_design.mapping.node_of(proc.id)
            ]
            if others:
                move = RemapProcess(proc.id, others[0])
                break
        assert move is not None
        other = move.apply(im_design)
        with DesignEvaluator(
            spec, max_cache_entries=2, **store_kwargs
        ) as batched:
            batched.evaluate_many([im_design, im_design.copy(), other])
            batch_order = list(batched.engine.cache._store)
            batch_stats = (batched.cache_hits, batched.cache_misses)
        serial_kwargs = dict(store_kwargs)
        if serial_kwargs.get("cache_path"):
            # A fresh database: the serial run must replay cold, not be
            # served by the batched run's rows.
            serial_kwargs["cache_path"] = str(tmp_path / "serial.sqlite")
        with DesignEvaluator(
            spec, max_cache_entries=2, **serial_kwargs
        ) as serial:
            for design in (im_design, im_design.copy(), other):
                serial.evaluate(design)
            serial_order = list(serial.engine.cache._store)
            serial_stats = (serial.cache_hits, serial.cache_misses)
        assert batch_order == serial_order
        assert batch_stats == serial_stats == (1, 2)

    def test_objectives_identical_cache_on_vs_off(self, spec):
        on = make_strategy("MH", use_cache=True).design(spec)
        off = make_strategy("MH", use_cache=False).design(spec)
        assert on.valid and off.valid
        assert on.objective == off.objective
        assert on.mapping.as_dict() == off.mapping.as_dict()
        assert on.priorities == off.priorities
        assert on.message_delays == off.message_delays
        assert off.cache_hits == 0 and off.cache_misses == 0

    def test_result_surfaces_cache_counters(self, spec):
        result = make_strategy("MH", use_cache=True).design(spec)
        assert result.cache_misses > 0
        assert result.evaluations >= result.cache_hits + result.cache_misses

    def test_sa_counts_consistent(self, spec):
        result = make_strategy("SA", iterations=40, seed=9).design(spec)
        assert result.valid
        assert result.evaluations >= result.cache_hits + result.cache_misses
        assert result.cache_misses > 0
