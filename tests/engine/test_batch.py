"""Tests for parallel batch evaluation and its determinism contract."""

import os

import pytest

from repro.core.initial_mapping import InitialMapper
from repro.core.strategy import DesignEvaluator, make_strategy
from repro.core.transformations import CandidateDesign, RemapProcess, SwapPriorities
from repro.engine.batch import BatchEvaluator
from repro.engine.compiled_spec import CompiledSpec
from repro.sched.priorities import hcp_priorities


@pytest.fixture(scope="module")
def neighbourhood(spec):
    """A batch of candidate designs around the IM starting point."""
    mapper = InitialMapper(spec.architecture)
    mapping, _ = mapper.try_map_and_schedule(
        spec.current, base=spec.base_schedule
    )
    start = CandidateDesign(
        mapping, hcp_priorities(spec.current, spec.architecture.bus)
    )
    designs = [start]
    processes = spec.current.processes
    for proc in processes[:4]:
        for node in proc.allowed_nodes:
            if node != mapping.node_of(proc.id):
                designs.append(RemapProcess(proc.id, node).apply(start))
    designs.append(
        SwapPriorities(processes[0].id, processes[-1].id).apply(start)
    )
    return start, designs


def _outcomes(results):
    return [None if r is None else r.objective for r in results]


class TestBatchEvaluator:
    def test_pool_matches_serial(self, spec, neighbourhood):
        _, designs = neighbourhood
        compiled = CompiledSpec(spec)
        serial = BatchEvaluator(compiled, jobs=1)
        with BatchEvaluator(
            compiled, jobs=2, parallel_threshold=0
        ) as pooled:
            assert pooled._use_pool(len(designs))
            par = pooled.evaluate_batch(designs)
        ser = serial.evaluate_batch(designs)
        assert _outcomes(par) == _outcomes(ser)
        # Pool results must reference the caller's original candidates,
        # not the workers' unpickled model copies.
        for design, outcome in zip(designs, par):
            if outcome is not None:
                assert outcome.design is design

    def test_small_problem_falls_back_to_serial(self, spec):
        compiled = CompiledSpec(spec)
        pooled = BatchEvaluator(
            compiled, jobs=2, parallel_threshold=compiled.total_jobs + 1
        )
        assert not pooled._use_pool(100)
        assert pooled._executor is None

    def test_single_candidate_stays_serial(self, spec):
        compiled = CompiledSpec(spec)
        pooled = BatchEvaluator(compiled, jobs=2, parallel_threshold=0)
        assert not pooled._use_pool(1)

    def test_close_is_sticky_and_idempotent(self, spec, neighbourhood):
        _, designs = neighbourhood
        evaluator = BatchEvaluator(
            CompiledSpec(spec), jobs=2, parallel_threshold=0
        )
        evaluator.evaluate_batch(designs[:3])
        evaluator.close()
        evaluator.close()
        assert evaluator.closed
        assert evaluator._executor is None

    def test_closed_evaluator_refuses_evaluation(self, spec, neighbourhood):
        _, designs = neighbourhood
        evaluator = BatchEvaluator(
            CompiledSpec(spec), jobs=2, parallel_threshold=0
        )
        evaluator.close()
        # A closed evaluator must refuse instead of silently recreating
        # a pool (or quietly degrading to serial evaluation).
        with pytest.raises(RuntimeError):
            evaluator.evaluate_batch(designs)
        with pytest.raises(RuntimeError):
            evaluator.evaluate_one(designs[0])
        assert evaluator._executor is None

    def test_closed_engine_refuses_evaluation(self, spec, neighbourhood):
        _, designs = neighbourhood
        evaluator = DesignEvaluator(spec)
        evaluator.evaluate(designs[0])
        evaluator.close()
        assert evaluator.engine.closed
        with pytest.raises(RuntimeError):
            evaluator.evaluate(designs[0])
        with pytest.raises(RuntimeError):
            evaluator.evaluate_many(designs)
        # Accounting stays readable after close (strategies record
        # statistics once the search has finished or failed).
        assert evaluator.evaluations == 1

    def test_pool_released_when_strategy_raises_mid_search(
        self, spec, monkeypatch
    ):
        """A strategy failing mid-search must still shut its pool down."""
        import repro.core.mapping_heuristic as mh_module

        captured = {}
        original = DesignEvaluator

        class CapturingEvaluator(original):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                captured["evaluator"] = self

        def boom(*args, **kwargs):
            raise RuntimeError("mid-search failure")

        monkeypatch.setattr(mh_module, "DesignEvaluator", CapturingEvaluator)
        monkeypatch.setattr(mh_module, "descent_loop", boom)
        strategy = make_strategy("MH", jobs=2)
        with pytest.raises(RuntimeError, match="mid-search failure"):
            strategy.design(spec)
        evaluator = captured["evaluator"]
        assert evaluator.engine.closed
        assert evaluator.engine.batch._executor is None


class TestEvaluateMany:
    def test_order_preserved_and_cached(self, spec, neighbourhood):
        _, designs = neighbourhood
        with DesignEvaluator(spec) as evaluator:
            batch = evaluator.evaluate_many(designs)
            singles = [evaluator.evaluate(d) for d in designs]
        assert _outcomes(batch) == _outcomes(singles)

    def test_duplicates_within_batch_scheduled_once(self, spec, neighbourhood):
        start, _ = neighbourhood
        with DesignEvaluator(spec) as evaluator:
            results = evaluator.evaluate_many([start, start.copy(), start])
            assert evaluator.evaluations == 3
            # One real scheduling pass; the duplicates count as hits so
            # evaluations == hits + misses stays an invariant.
            assert evaluator.cache_misses == 1
            assert evaluator.cache_hits == 2
            assert _outcomes(results)[0] is not None
            assert len(set(_outcomes(results))) == 1

    def test_parallel_evaluator_matches_serial(self, spec, neighbourhood):
        _, designs = neighbourhood
        with DesignEvaluator(
            spec, use_cache=False, jobs=2, parallel_threshold=0
        ) as par:
            par_out = par.evaluate_many(designs)
        ser = DesignEvaluator(spec, use_cache=False)
        assert _outcomes(par_out) == _outcomes(ser.evaluate_many(designs))


class TestSeededRunDeterminism:
    def test_sa_identical_serial_vs_jobs2(self, spec):
        serial = make_strategy("SA", iterations=60, seed=11).design(spec)
        parallel = make_strategy(
            "SA", iterations=60, seed=11, jobs=2
        ).design(spec)
        assert serial.valid and parallel.valid
        assert serial.mapping.as_dict() == parallel.mapping.as_dict()
        assert serial.priorities == parallel.priorities
        assert serial.message_delays == parallel.message_delays
        assert serial.objective == parallel.objective
        assert serial.evaluations == parallel.evaluations

    def test_mh_identical_serial_vs_jobs2(self, spec):
        serial = make_strategy("MH").design(spec)
        parallel = make_strategy("MH", jobs=2).design(spec)
        assert serial.valid and parallel.valid
        assert serial.mapping.as_dict() == parallel.mapping.as_dict()
        assert serial.priorities == parallel.priorities
        assert serial.objective == parallel.objective


class _ExplodingMove:
    """Module-level (hence picklable) move that raises in the worker."""

    def apply(self, design):
        raise RuntimeError("exploding move")


class _WorkerKillingMove:
    """Module-level move that kills its worker process outright."""

    def apply(self, design):
        os._exit(1)


class TestAbortPool:
    """Regression: in-flight failures must terminate the pool, not
    join it, and leave the evaluator sticky-closed."""

    def _pooled_parent(self, spec):
        evaluator = BatchEvaluator(
            CompiledSpec(spec), jobs=2, parallel_threshold=0
        )
        parent = evaluator.evaluate_one(
            _start_design(spec)
        )
        assert parent is not None and parent.trace is not None
        return evaluator, parent

    def test_worker_exception_mid_chunk_aborts_pool(self, spec):
        evaluator, parent = self._pooled_parent(spec)
        moves = [_ExplodingMove() for _ in range(4)]
        children = [parent.design.copy() for _ in moves]
        before = evaluator.timings.snapshot()
        with pytest.raises(RuntimeError, match="exploding move"):
            evaluator.evaluate_moves(parent, moves, children)
        # Dropped chunks must not leak their workers' stage timings
        # into the engine sink (deltas merge only on clean receipt).
        assert evaluator.timings.snapshot() == before
        assert evaluator.closed
        assert evaluator._executor is None
        with pytest.raises(RuntimeError, match="closed"):
            evaluator.evaluate_batch([parent.design])

    def test_worker_death_mid_chunk_aborts_pool(self, spec):
        from concurrent.futures.process import BrokenProcessPool

        evaluator, parent = self._pooled_parent(spec)
        moves = [_WorkerKillingMove() for _ in range(4)]
        children = [parent.design.copy() for _ in moves]
        with pytest.raises(BrokenProcessPool):
            evaluator.evaluate_moves(parent, moves, children)
        assert evaluator.closed
        assert evaluator._executor is None
        with pytest.raises(RuntimeError, match="closed"):
            evaluator.evaluate_one(parent.design)

    def test_abort_without_executor_is_safe(self, spec):
        evaluator = BatchEvaluator(
            CompiledSpec(spec), jobs=2, parallel_threshold=0
        )
        evaluator._abort_pool()
        assert evaluator.closed
        assert evaluator._executor is None


def _start_design(spec):
    mapper = InitialMapper(spec.architecture)
    mapping, _ = mapper.try_map_and_schedule(
        spec.current, base=spec.base_schedule
    )
    return CandidateDesign(
        mapping, hcp_priorities(spec.current, spec.architecture.bus)
    )


class TestDispatchChunksize:
    """Chunking must keep every worker busy for any batch size."""

    def test_fair_share_cap(self):
        from repro.engine.batch import dispatch_chunksize

        # A batch barely above MIN_PARALLEL_BATCH must still be split
        # so that no chunk swallows (nearly) the whole batch.
        for n in range(1, 64):
            for jobs in range(1, 9):
                chunk = dispatch_chunksize(n, jobs)
                assert chunk >= 1
                fair = -(-n // jobs)
                assert chunk <= fair, (n, jobs, chunk)

    def test_every_worker_gets_a_chunk(self):
        from repro.engine.batch import dispatch_chunksize

        for n in range(1, 200):
            for jobs in range(2, 9):
                chunk = dispatch_chunksize(n, jobs)
                n_chunks = -(-n // chunk)
                assert n_chunks >= min(n, jobs), (n, jobs, chunk, n_chunks)

    def test_load_balancing_target(self):
        from repro.engine.batch import CHUNKS_PER_WORKER, dispatch_chunksize

        # Large batches aim for ~CHUNKS_PER_WORKER chunks per worker.
        chunk = dispatch_chunksize(1000, 4)
        n_chunks = -(-1000 // chunk)
        assert n_chunks >= 4 * CHUNKS_PER_WORKER

    def test_serial_degenerate_cases(self):
        from repro.engine.batch import dispatch_chunksize

        assert dispatch_chunksize(0, 4) == 1
        assert dispatch_chunksize(10, 1) == 1
        assert dispatch_chunksize(10, 0) == 1

    def test_dispatch_distribution_regression(self):
        """Simulated round-robin dispatch leaves no worker idle.

        Regression for the historical ``len // (jobs * 4)`` formula: a
        cap at the fair share guarantees at least ``min(n, jobs)``
        chunks, so a pool of ``jobs`` workers pulling chunks greedily
        all receive work whenever the batch has enough items.
        """
        from repro.engine.batch import dispatch_chunksize

        for n, jobs in [(2, 8), (5, 4), (9, 8), (33, 8), (97, 6)]:
            chunk = dispatch_chunksize(n, jobs)
            chunks = [
                list(range(i, min(i + chunk, n))) for i in range(0, n, chunk)
            ]
            # greedy pull: worker w takes chunk w, then jobs+w, ...
            per_worker = [chunks[w::jobs] for w in range(jobs)]
            busy = sum(1 for assigned in per_worker if assigned)
            assert busy == min(n, jobs), (n, jobs, chunk, busy)
            # and no worker owns (nearly) the whole batch
            heaviest = max(
                sum(len(c) for c in assigned) for assigned in per_worker
            )
            assert heaviest <= -(-n // jobs) * -(-len(chunks) // jobs)
