"""Tests for problem compilation: job expansion, templates, signatures."""

import pytest

from repro.core.initial_mapping import InitialMapper
from repro.core.transformations import CandidateDesign
from repro.engine.compiled_spec import CompiledSpec
from repro.sched.priorities import hcp_priorities
from repro.utils.errors import SchedulingError


def _reference_expansion(application, horizon):
    """The seed's inline expansion (previously in ListScheduler), kept
    verbatim as a regression reference for the shared job table."""
    jobs = {}
    preds_left = {}
    succ_edges = {}
    for graph in application.graphs:
        instances = horizon // graph.period
        for k in range(instances):
            release = k * graph.period
            abs_deadline = release + graph.deadline
            for proc in graph.processes:
                key = (proc.id, k)
                jobs[key] = (proc.id, k, graph.name, release, abs_deadline)
                preds_left[key] = len(graph.predecessors(proc.id))
                succ_edges[key] = [
                    (succ, k) for succ in graph.successors(proc.id)
                ]
    return jobs, preds_left, succ_edges


class TestJobExpansion:
    def test_matches_previous_inline_expansion(self, spec):
        compiled = CompiledSpec(spec)
        ref_jobs, ref_preds, ref_succs = _reference_expansion(
            spec.current, compiled.horizon
        )
        table = compiled.job_table
        assert set(table.jobs) == set(ref_jobs)
        for key, job in table.jobs.items():
            assert (
                job.process_id,
                job.instance,
                job.graph_name,
                job.release,
                job.abs_deadline,
            ) == ref_jobs[key]
        assert table.preds_template == ref_preds
        assert {k: v for k, v in table.succ_edges.items()} == ref_succs

    def test_sources_are_predecessor_free(self, spec):
        table = CompiledSpec(spec).job_table
        assert table.sources
        for key in table.sources:
            assert table.preds_template[key] == 0

    def test_fresh_preds_is_independent(self, spec):
        table = CompiledSpec(spec).job_table
        preds = table.fresh_preds()
        key = next(iter(preds))
        preds[key] -= 1
        assert table.preds_template[key] == preds[key] + 1

    def test_total_jobs(self, spec):
        compiled = CompiledSpec(spec)
        expected = sum(
            (compiled.horizon // g.period) * len(g.processes)
            for g in spec.current.graphs
        )
        assert compiled.total_jobs == expected == len(compiled.job_table)


class TestCompiledSpec:
    def test_horizon_matches_spec(self, spec):
        assert CompiledSpec(spec).horizon == spec.effective_horizon()

    def test_indivisible_period_rejected(self, spec):
        from dataclasses import replace

        bad = replace(
            spec, base_schedule=None, horizon=spec.current.hyperperiod() + 1
        )
        with pytest.raises(SchedulingError):
            CompiledSpec(bad)

    def test_fresh_schedule_is_independent_copy(self, spec):
        compiled = CompiledSpec(spec)
        one = compiled.fresh_schedule()
        two = compiled.fresh_schedule()
        assert one is not two
        before = len(list(two.all_entries()))
        node = spec.architecture.node_ids[0]
        one.place_process("scratch", 0, node, one.earliest_fit(node, 1, 0), 1)
        assert len(list(two.all_entries())) == before
        assert len(list(compiled.fresh_schedule().all_entries())) == before

    def test_default_priorities_are_hcp(self, spec):
        compiled = CompiledSpec(spec)
        assert compiled.default_priorities == hcp_priorities(
            spec.current, spec.architecture.bus
        )

    def test_scheduler_compiled_path_matches_uncompiled(self, spec):
        from repro.sched.list_scheduler import ListScheduler

        compiled = CompiledSpec(spec)
        mapper = InitialMapper(spec.architecture)
        mapping, _ = mapper.try_map_and_schedule(
            spec.current, base=spec.base_schedule
        )
        scheduler = ListScheduler(spec.architecture)
        plain = scheduler.try_schedule(
            spec.current, mapping, base=spec.base_schedule
        )
        fast = scheduler.try_schedule(spec.current, mapping, compiled=compiled)
        assert plain.success and fast.success
        plain_entries = {
            (e.process_id, e.instance): (e.node_id, e.start, e.end)
            for e in plain.schedule.all_entries()
        }
        fast_entries = {
            (e.process_id, e.instance): (e.node_id, e.start, e.end)
            for e in fast.schedule.all_entries()
        }
        assert plain_entries == fast_entries

    def test_mismatched_compiled_spec_rejected(self, spec, arch2, chain_app):
        from repro.model.mapping import Mapping
        from repro.sched.list_scheduler import ListScheduler

        compiled = CompiledSpec(spec)
        scheduler = ListScheduler(arch2)
        other_mapping = Mapping(
            chain_app, arch2, {p.id: "N1" for p in chain_app.processes}
        )
        with pytest.raises(SchedulingError):
            scheduler.try_schedule(chain_app, other_mapping, compiled=compiled)
        mapper = InitialMapper(arch2)
        with pytest.raises(SchedulingError):
            mapper.try_map_and_schedule(chain_app, compiled=compiled)

    def test_conflicting_horizon_with_compiled_rejected(self, spec):
        from repro.sched.list_scheduler import ListScheduler

        compiled = CompiledSpec(spec)
        mapper = InitialMapper(spec.architecture)
        mapping, _ = mapper.try_map_and_schedule(
            spec.current, base=spec.base_schedule
        )
        scheduler = ListScheduler(spec.architecture)
        with pytest.raises(SchedulingError):
            scheduler.try_schedule(
                spec.current,
                mapping,
                horizon=compiled.horizon * 2,
                compiled=compiled,
            )
        with pytest.raises(SchedulingError):
            mapper.try_map_and_schedule(
                spec.current, horizon=compiled.horizon * 2, compiled=compiled
            )

    def test_initial_mapper_compiled_path_matches_uncompiled(self, spec):
        compiled = CompiledSpec(spec)
        mapper = InitialMapper(spec.architecture)
        plain = mapper.try_map_and_schedule(
            spec.current, base=spec.base_schedule
        )
        fast = mapper.try_map_and_schedule(spec.current, compiled=compiled)
        assert plain is not None and fast is not None
        assert plain[0].as_dict() == fast[0].as_dict()


class TestSignature:
    def test_equal_designs_equal_signatures(self, spec):
        compiled = CompiledSpec(spec)
        mapper = InitialMapper(spec.architecture)
        mapping, _ = mapper.try_map_and_schedule(
            spec.current, base=spec.base_schedule
        )
        priorities = hcp_priorities(spec.current, spec.architecture.bus)
        a = CandidateDesign(mapping, dict(priorities))
        b = CandidateDesign(mapping.copy(), dict(priorities))
        assert compiled.signature(a) == compiled.signature(b)

    def test_different_delays_different_signatures(self, spec):
        compiled = CompiledSpec(spec)
        mapper = InitialMapper(spec.architecture)
        mapping, _ = mapper.try_map_and_schedule(
            spec.current, base=spec.base_schedule
        )
        priorities = hcp_priorities(spec.current, spec.architecture.bus)
        msg = spec.current.messages[0]
        a = CandidateDesign(mapping, dict(priorities))
        b = CandidateDesign(mapping.copy(), dict(priorities), {msg.id: 1})
        assert compiled.signature(a) != compiled.signature(b)


class TestArchitectureValidation:
    """Compilation must reject application/platform-variant mismatches."""

    def test_wcet_table_with_unknown_node_rejected(self, spec):
        from repro.core.strategy import DesignSpec
        from repro.gen.architecture_gen import random_architecture
        from repro.model.application import Application
        from repro.model.process_graph import Process, ProcessGraph

        graph = ProcessGraph("g0", spec.effective_horizon())
        graph.add_process(Process("x.P0", {"N0": 5, "N9": 3}))
        other = Application("x", [graph])
        smaller = random_architecture(2)  # has N0, N1 -- no N9
        bad = DesignSpec(
            architecture=smaller,
            current=other,
            future=spec.future,
        )
        with pytest.raises(SchedulingError, match="N9"):
            CompiledSpec(bad)

    def test_base_schedule_from_other_platform_rejected(self, spec):
        from dataclasses import replace as dc_replace

        from repro.gen.architecture_gen import random_architecture

        grown = random_architecture(
            len(spec.architecture) + 1,
            slot_length=spec.architecture.bus.slots[0].length,
            slot_capacity=spec.architecture.bus.slots[0].capacity,
        )
        bad = dc_replace(spec, architecture=grown)
        with pytest.raises(SchedulingError, match="architecture"):
            CompiledSpec(bad)

    def test_matching_variant_compiles(self, spec):
        assert CompiledSpec(spec).total_jobs > 0
