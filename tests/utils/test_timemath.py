"""Tests for hyperperiod and periodic-window arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.intervals import Interval
from repro.utils.timemath import hyperperiod, periodic_windows


class TestHyperperiod:
    def test_single_period(self):
        assert hyperperiod([12]) == 12

    def test_coprime(self):
        assert hyperperiod([3, 5]) == 15

    def test_harmonic(self):
        assert hyperperiod([100, 50, 25]) == 100

    def test_duplicates(self):
        assert hyperperiod([8, 8, 8]) == 8

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            hyperperiod([])

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            hyperperiod([4, 0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            hyperperiod([4, -2])

    @given(st.lists(st.integers(1, 40), min_size=1, max_size=6))
    def test_every_period_divides_hyperperiod(self, periods):
        h = hyperperiod(periods)
        assert all(h % p == 0 for p in periods)

    @given(st.lists(st.integers(1, 40), min_size=1, max_size=6))
    def test_hyperperiod_at_least_max(self, periods):
        assert hyperperiod(periods) >= max(periods)


class TestPeriodicWindows:
    def test_exact_division(self):
        windows = periodic_windows(100, 25)
        assert windows == [
            Interval(0, 25),
            Interval(25, 50),
            Interval(50, 75),
            Interval(75, 100),
        ]

    def test_truncated_last_window(self):
        windows = periodic_windows(10, 4)
        assert windows == [Interval(0, 4), Interval(4, 8), Interval(8, 10)]

    def test_window_larger_than_horizon(self):
        assert periodic_windows(5, 100) == [Interval(0, 5)]

    def test_window_one(self):
        assert len(periodic_windows(7, 1)) == 7

    def test_zero_horizon_rejected(self):
        with pytest.raises(ValueError):
            periodic_windows(0, 5)

    def test_zero_window_rejected(self):
        with pytest.raises(ValueError):
            periodic_windows(10, 0)

    @given(st.integers(1, 500), st.integers(1, 100))
    def test_windows_partition_horizon(self, horizon, window):
        windows = periodic_windows(horizon, window)
        assert windows[0].start == 0
        assert windows[-1].end == horizon
        for prev, cur in zip(windows, windows[1:]):
            assert prev.end == cur.start
        assert sum(w.length for w in windows) == horizon
