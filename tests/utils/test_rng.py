"""Tests for the deterministic RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import make_rng, spawn_rngs


class TestMakeRng:
    def test_int_seed_is_deterministic(self):
        a = make_rng(42).integers(0, 1_000_000, size=8)
        b = make_rng(42).integers(0, 1_000_000, size=8)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 1_000_000, size=8)
        b = make_rng(2).integers(0, 1_000_000, size=8)
        assert not (a == b).all()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_deterministic(self):
        a = [g.integers(0, 10**9) for g in spawn_rngs(3, 4)]
        b = [g.integers(0, 10**9) for g in spawn_rngs(3, 4)]
        assert a == b

    def test_children_independent(self):
        draws = [g.integers(0, 10**9) for g in spawn_rngs(3, 6)]
        assert len(set(draws)) == len(draws)

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(11)
        children = spawn_rngs(gen, 3)
        assert len(children) == 3
        assert all(isinstance(c, np.random.Generator) for c in children)
