"""Unit and property tests for half-open intervals and interval sets."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.intervals import Interval, IntervalSet


# ----------------------------------------------------------------------
# Interval
# ----------------------------------------------------------------------
class TestInterval:
    def test_length(self):
        assert Interval(3, 10).length == 7

    def test_empty_interval(self):
        iv = Interval(5, 5)
        assert iv.empty
        assert iv.length == 0

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            Interval(10, 3)

    def test_contains_inclusive_start(self):
        assert Interval(2, 5).contains(2)

    def test_contains_exclusive_end(self):
        assert not Interval(2, 5).contains(5)

    def test_contains_interior(self):
        assert Interval(2, 5).contains(4)

    def test_overlap_true(self):
        assert Interval(0, 5).overlaps(Interval(4, 8))

    def test_overlap_adjacent_false(self):
        assert not Interval(0, 5).overlaps(Interval(5, 8))

    def test_overlap_disjoint_false(self):
        assert not Interval(0, 3).overlaps(Interval(5, 8))

    def test_overlap_contained(self):
        assert Interval(0, 10).overlaps(Interval(3, 4))

    def test_intersect(self):
        assert Interval(0, 6).intersect(Interval(4, 10)) == Interval(4, 6)

    def test_intersect_disjoint_is_empty(self):
        assert Interval(0, 3).intersect(Interval(5, 8)).empty

    def test_shift(self):
        assert Interval(2, 5).shift(10) == Interval(12, 15)

    def test_ordering(self):
        assert Interval(1, 3) < Interval(2, 3)

    @given(
        a=st.integers(-1000, 1000),
        length=st.integers(0, 1000),
        delta=st.integers(-500, 500),
    )
    def test_shift_preserves_length(self, a, length, delta):
        iv = Interval(a, a + length)
        assert iv.shift(delta).length == iv.length


# ----------------------------------------------------------------------
# IntervalSet basics
# ----------------------------------------------------------------------
class TestIntervalSetAdd:
    def test_empty_set(self):
        s = IntervalSet()
        assert len(s) == 0
        assert not s
        assert s.total_length == 0

    def test_add_single(self):
        s = IntervalSet()
        s.add(Interval(2, 5))
        assert s.intervals() == [Interval(2, 5)]

    def test_add_empty_is_noop(self):
        s = IntervalSet()
        s.add(Interval(3, 3))
        assert len(s) == 0

    def test_add_disjoint_keeps_sorted(self):
        s = IntervalSet()
        s.add(Interval(10, 12))
        s.add(Interval(0, 2))
        s.add(Interval(5, 7))
        assert s.intervals() == [Interval(0, 2), Interval(5, 7), Interval(10, 12)]

    def test_add_merges_overlap(self):
        s = IntervalSet([Interval(0, 5)])
        s.add(Interval(3, 8))
        assert s.intervals() == [Interval(0, 8)]

    def test_add_merges_adjacent(self):
        s = IntervalSet([Interval(0, 5)])
        s.add(Interval(5, 8))
        assert s.intervals() == [Interval(0, 8)]

    def test_add_bridges_multiple(self):
        s = IntervalSet([Interval(0, 2), Interval(4, 6), Interval(8, 10)])
        s.add(Interval(1, 9))
        assert s.intervals() == [Interval(0, 10)]

    def test_add_contained_is_noop(self):
        s = IntervalSet([Interval(0, 10)])
        s.add(Interval(3, 4))
        assert s.intervals() == [Interval(0, 10)]

    def test_equality(self):
        a = IntervalSet([Interval(0, 2), Interval(4, 6)])
        b = IntervalSet([Interval(4, 6), Interval(0, 2)])
        assert a == b

    def test_copy_is_independent(self):
        a = IntervalSet([Interval(0, 2)])
        b = a.copy()
        b.add(Interval(10, 12))
        assert len(a) == 1
        assert len(b) == 2


class TestIntervalSetBusy:
    def test_add_busy_rejects_overlap(self):
        s = IntervalSet([Interval(0, 5)])
        with pytest.raises(ValueError):
            s.add_busy(Interval(4, 8))

    def test_add_busy_allows_adjacent(self):
        s = IntervalSet([Interval(0, 5)])
        s.add_busy(Interval(5, 8))
        assert s.total_length == 8

    def test_overlaps_detects_interior(self):
        s = IntervalSet([Interval(2, 6)])
        assert s.overlaps(Interval(5, 9))
        assert s.overlaps(Interval(0, 3))
        assert s.overlaps(Interval(3, 4))

    def test_overlaps_adjacent_false(self):
        s = IntervalSet([Interval(2, 6)])
        assert not s.overlaps(Interval(6, 9))
        assert not s.overlaps(Interval(0, 2))

    def test_overlaps_empty_query(self):
        s = IntervalSet([Interval(2, 6)])
        assert not s.overlaps(Interval(3, 3))

    def test_contains_point(self):
        s = IntervalSet([Interval(2, 6)])
        assert s.contains_point(2)
        assert s.contains_point(5)
        assert not s.contains_point(6)
        assert not s.contains_point(1)


class TestComplement:
    def test_complement_of_empty_is_horizon(self):
        s = IntervalSet()
        assert s.complement(Interval(0, 10)).intervals() == [Interval(0, 10)]

    def test_complement_full_coverage_is_empty(self):
        s = IntervalSet([Interval(0, 10)])
        assert len(s.complement(Interval(0, 10))) == 0

    def test_complement_middle_gap(self):
        s = IntervalSet([Interval(0, 3), Interval(7, 10)])
        assert s.complement(Interval(0, 10)).intervals() == [Interval(3, 7)]

    def test_complement_edges(self):
        s = IntervalSet([Interval(2, 4)])
        assert s.complement(Interval(0, 10)).intervals() == [
            Interval(0, 2),
            Interval(4, 10),
        ]

    def test_complement_ignores_outside(self):
        s = IntervalSet([Interval(-5, -1), Interval(20, 30)])
        assert s.complement(Interval(0, 10)).intervals() == [Interval(0, 10)]

    def test_complement_partial_overlap_at_edges(self):
        s = IntervalSet([Interval(-2, 3), Interval(8, 15)])
        assert s.complement(Interval(0, 10)).intervals() == [Interval(3, 8)]

    @given(
        st.lists(
            st.tuples(st.integers(0, 100), st.integers(1, 20)), max_size=12
        )
    )
    def test_complement_partitions_horizon(self, raw):
        """busy + slack lengths always sum to the horizon length."""
        horizon = Interval(0, 120)
        s = IntervalSet()
        for start, length in raw:
            s.add(Interval(start, min(start + length, 120)))
        slack = s.complement(horizon)
        busy_within = s.length_within(horizon)
        assert busy_within + slack.total_length == horizon.length

    @given(
        st.lists(
            st.tuples(st.integers(0, 100), st.integers(1, 20)), max_size=12
        )
    )
    def test_complement_disjoint_from_set(self, raw):
        s = IntervalSet()
        for start, length in raw:
            s.add(Interval(start, start + length))
        for gap in s.complement(Interval(0, 120)):
            assert not s.overlaps(gap)


class TestWindows:
    def test_clipped(self):
        s = IntervalSet([Interval(0, 5), Interval(8, 12)])
        clipped = s.clipped(Interval(3, 10))
        assert clipped.intervals() == [Interval(3, 5), Interval(8, 10)]

    def test_length_within(self):
        s = IntervalSet([Interval(0, 5), Interval(8, 12)])
        assert s.length_within(Interval(3, 10)) == 4

    def test_length_within_empty_window(self):
        s = IntervalSet([Interval(0, 5)])
        assert s.length_within(Interval(6, 6)) == 0


class TestEarliestFit:
    def test_fit_in_empty_set(self):
        assert IntervalSet().earliest_fit(5, 0) == 0

    def test_fit_respects_not_before(self):
        assert IntervalSet().earliest_fit(5, 17) == 17

    def test_fit_skips_busy(self):
        s = IntervalSet([Interval(0, 10)])
        assert s.earliest_fit(5, 0) == 10

    def test_fit_in_gap(self):
        s = IntervalSet([Interval(0, 4), Interval(10, 20)])
        assert s.earliest_fit(5, 0) == 4

    def test_fit_too_big_for_gap(self):
        s = IntervalSet([Interval(0, 4), Interval(10, 20)])
        assert s.earliest_fit(7, 0) == 20

    def test_fit_not_before_inside_busy(self):
        s = IntervalSet([Interval(0, 10)])
        assert s.earliest_fit(3, 5) == 10

    def test_fit_not_before_inside_gap(self):
        s = IntervalSet([Interval(0, 4), Interval(20, 30)])
        assert s.earliest_fit(5, 6) == 6

    def test_fit_not_before_inside_gap_but_too_small(self):
        s = IntervalSet([Interval(0, 4), Interval(10, 30)])
        assert s.earliest_fit(5, 6) == 30

    def test_zero_duration_lands_on_first_free_instant(self):
        s = IntervalSet([Interval(0, 4)])
        assert s.earliest_fit(0, 0) == 4

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            IntervalSet().earliest_fit(-1, 0)

    @given(
        raw=st.lists(
            st.tuples(st.integers(0, 200), st.integers(1, 30)), max_size=10
        ),
        duration=st.integers(1, 40),
        not_before=st.integers(0, 100),
    )
    def test_fit_never_overlaps(self, raw, duration, not_before):
        s = IntervalSet()
        for start, length in raw:
            s.add(Interval(start, start + length))
        start = s.earliest_fit(duration, not_before)
        assert start >= not_before
        assert not s.overlaps(Interval(start, start + duration))

    def test_gaps_as_tuples(self):
        s = IntervalSet([Interval(2, 4)])
        assert s.gaps_as_tuples(Interval(0, 6)) == [(0, 2), (4, 6)]
