"""Round-trip tests for scenario serialization."""

import json

import pytest

from repro.gen.scenario import ScenarioParams, build_scenario
from repro.serialize import (
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_params_from_dict,
    scenario_params_to_dict,
    scenario_to_dict,
)
from repro.utils.errors import InvalidModelError


@pytest.fixture(scope="module")
def scenario():
    params = ScenarioParams(
        n_nodes=3, hyperperiod=2400, n_existing=10, n_current=5
    )
    return build_scenario(params, seed=2)


class TestParamsCodec:
    def test_round_trip(self, scenario):
        payload = scenario_params_to_dict(scenario.params)
        assert scenario_params_from_dict(payload) == scenario.params

    def test_json_safe(self, scenario):
        json.dumps(scenario_params_to_dict(scenario.params))

    def test_wrong_kind_rejected(self):
        with pytest.raises(InvalidModelError):
            scenario_params_from_dict({"kind": "scenario"})

    def test_tuples_restored_after_json(self, scenario):
        # Through a real JSON round trip, tuples become lists.
        payload = json.loads(
            json.dumps(scenario_params_to_dict(scenario.params))
        )
        rebuilt = scenario_params_from_dict(payload)
        assert isinstance(rebuilt.period_divisors, tuple)
        assert rebuilt == scenario.params


class TestScenarioCodec:
    def test_round_trip_components(self, scenario):
        rebuilt = scenario_from_dict(scenario_to_dict(scenario))
        assert rebuilt.seed == scenario.seed
        assert rebuilt.params == scenario.params
        assert rebuilt.future == scenario.future
        assert rebuilt.existing.process_count == scenario.existing.process_count
        assert rebuilt.current.process_count == scenario.current.process_count
        assert rebuilt.architecture.node_ids == scenario.architecture.node_ids

    def test_base_schedule_preserved(self, scenario):
        rebuilt = scenario_from_dict(scenario_to_dict(scenario))
        old = sorted(
            (e.process_id, e.instance, e.node_id, e.start, e.end)
            for e in scenario.base_schedule.all_entries()
        )
        new = sorted(
            (e.process_id, e.instance, e.node_id, e.start, e.end)
            for e in rebuilt.base_schedule.all_entries()
        )
        assert old == new
        assert all(e.frozen for e in rebuilt.base_schedule.all_entries())

    def test_rebuilt_scenario_is_designable(self, scenario):
        from repro.core.strategy import design_application

        rebuilt = scenario_from_dict(scenario_to_dict(scenario))
        result = design_application(rebuilt.spec(), "AH")
        original = design_application(scenario.spec(), "AH")
        assert result.valid == original.valid
        if result.valid:
            assert result.objective == pytest.approx(original.objective)

    def test_file_round_trip(self, scenario, tmp_path):
        path = tmp_path / "scenario.json"
        save_scenario(scenario, path)
        rebuilt = load_scenario(path)
        assert rebuilt.future == scenario.future

    def test_load_rejects_other_kinds(self, tmp_path):
        path = tmp_path / "not_a_scenario.json"
        path.write_text(json.dumps({"kind": "application"}))
        with pytest.raises(InvalidModelError):
            load_scenario(path)
