"""Round-trip tests for the JSON codecs."""

import json

import pytest

from repro.core.future import DiscreteDistribution, FutureCharacterization
from repro.gen.scenario import ScenarioParams, build_scenario
from repro.model.application import Application
from repro.model.mapping import Mapping
from repro.serialize import (
    application_from_dict,
    application_to_dict,
    architecture_from_dict,
    architecture_to_dict,
    from_dict,
    future_from_dict,
    future_to_dict,
    load_json,
    mapping_from_dict,
    mapping_to_dict,
    save_json,
    schedule_from_dict,
    schedule_to_dict,
    to_dict,
)
from repro.utils.errors import InvalidModelError

from tests.conftest import make_fork_join_graph


@pytest.fixture(scope="module")
def scenario():
    params = ScenarioParams(n_nodes=3, hyperperiod=2400,
                            n_existing=12, n_current=6)
    return build_scenario(params, seed=9)


class TestApplicationCodec:
    def test_round_trip(self, scenario):
        payload = application_to_dict(scenario.existing)
        rebuilt = application_from_dict(payload)
        assert rebuilt.name == scenario.existing.name
        assert rebuilt.process_count == scenario.existing.process_count
        assert rebuilt.message_count == scenario.existing.message_count
        for g_old, g_new in zip(scenario.existing.graphs, rebuilt.graphs):
            assert (g_new.period, g_new.deadline) == (g_old.period, g_old.deadline)
            for p_old, p_new in zip(g_old.processes, g_new.processes):
                assert dict(p_new.wcet) == dict(p_old.wcet)

    def test_payload_is_json_safe(self, scenario):
        json.dumps(application_to_dict(scenario.existing))

    def test_wrong_kind_rejected(self):
        with pytest.raises(InvalidModelError):
            application_from_dict({"kind": "architecture"})


class TestArchitectureCodec:
    def test_round_trip(self, scenario):
        payload = architecture_to_dict(scenario.architecture)
        rebuilt = architecture_from_dict(payload)
        assert rebuilt.node_ids == scenario.architecture.node_ids
        assert rebuilt.bus.round_length == scenario.architecture.bus.round_length
        for old, new in zip(scenario.architecture.bus.slots, rebuilt.bus.slots):
            assert (new.node_id, new.length, new.capacity) == (
                old.node_id,
                old.length,
                old.capacity,
            )


class TestMappingCodec:
    def test_round_trip(self, scenario):
        app = scenario.current
        mapping = Mapping(
            app,
            scenario.architecture,
            {p.id: p.allowed_nodes[0] for p in app.processes},
        )
        payload = mapping_to_dict(mapping)
        rebuilt = mapping_from_dict(payload, app, scenario.architecture)
        assert rebuilt.as_dict() == mapping.as_dict()

    def test_wrong_application_rejected(self, scenario):
        app = scenario.current
        mapping = Mapping(
            app,
            scenario.architecture,
            {p.id: p.allowed_nodes[0] for p in app.processes},
        )
        payload = mapping_to_dict(mapping)
        other = Application("other", [make_fork_join_graph(nodes=("N0",))])
        with pytest.raises(InvalidModelError):
            mapping_from_dict(payload, other, scenario.architecture)


class TestFutureCodec:
    def test_round_trip(self, scenario):
        payload = future_to_dict(scenario.future)
        rebuilt = future_from_dict(payload)
        assert rebuilt == scenario.future

    def test_distribution_preserved(self):
        fc = FutureCharacterization(
            t_min=100,
            t_need=50,
            b_need=10,
            wcet_distribution=DiscreteDistribution((3, 9), (0.25, 0.75)),
        )
        rebuilt = future_from_dict(future_to_dict(fc))
        assert rebuilt.wcet_distribution.values == (3, 9)
        assert rebuilt.wcet_distribution.probabilities == (0.25, 0.75)


class TestScheduleCodec:
    def test_round_trip(self, scenario):
        payload = schedule_to_dict(scenario.base_schedule)
        rebuilt = schedule_from_dict(payload)
        assert rebuilt.horizon == scenario.base_schedule.horizon
        old_entries = sorted(
            (e.process_id, e.instance, e.node_id, e.start, e.end, e.frozen)
            for e in scenario.base_schedule.all_entries()
        )
        new_entries = sorted(
            (e.process_id, e.instance, e.node_id, e.start, e.end, e.frozen)
            for e in rebuilt.all_entries()
        )
        assert old_entries == new_entries
        assert rebuilt.bus.total_free_bytes() == (
            scenario.base_schedule.bus.total_free_bytes()
        )

    def test_json_safe(self, scenario):
        json.dumps(schedule_to_dict(scenario.base_schedule))


class TestGenericEntryPoints:
    def test_to_dict_dispatch(self, scenario):
        assert to_dict(scenario.existing)["kind"] == "application"
        assert to_dict(scenario.architecture)["kind"] == "architecture"
        assert to_dict(scenario.future)["kind"] == "future"
        assert to_dict(scenario.base_schedule)["kind"] == "schedule"

    def test_to_dict_unknown_type(self):
        with pytest.raises(TypeError):
            to_dict(42)

    def test_from_dict_dispatch(self, scenario):
        payload = to_dict(scenario.future)
        assert from_dict(payload) == scenario.future

    def test_from_dict_unknown_kind(self):
        with pytest.raises(InvalidModelError):
            from_dict({"kind": "mystery"})

    def test_file_round_trip(self, scenario, tmp_path):
        path = tmp_path / "future.json"
        save_json(scenario.future, path)
        assert load_json(path) == scenario.future

    def test_file_round_trip_schedule(self, scenario, tmp_path):
        path = tmp_path / "schedule.json"
        save_json(scenario.base_schedule, path)
        rebuilt = load_json(path)
        rebuilt.validate()
