"""Cross-module property-based tests (hypothesis).

These drive the generator + scheduler + metrics pipeline with random
shapes and check the invariants the paper's machinery relies on:
schedules never overlap, requirement (a) holds structurally, metrics
stay in range, and the objective is deterministic.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.future import DiscreteDistribution, FutureCharacterization
from repro.core.metrics import evaluate_design, metric_c1p, metric_c2p
from repro.gen.architecture_gen import random_architecture
from repro.gen.taskgraph import GraphParams, random_process_graph
from repro.model.application import Application
from repro.core.initial_mapping import InitialMapper
from repro.sched.schedule import SystemSchedule
from repro.utils.intervals import Interval

COMMON_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_application(draw):
    """A random 1-graph application on a random small platform."""
    n_nodes = draw(st.integers(2, 4))
    n_procs = draw(st.integers(1, 10))
    seed = draw(st.integers(0, 10_000))
    arch = random_architecture(n_nodes, slot_length=4, slot_capacity=8)
    graph = random_process_graph(
        "g0",
        n_procs,
        period=480,
        architecture=arch,
        rng=seed,
        params=GraphParams(wcet_range=(5, 25), msg_size_range=(2, 6)),
    )
    return arch, Application("app", [graph])


class TestSchedulingProperties:
    @given(small_application())
    @settings(**COMMON_SETTINGS)
    def test_im_schedules_are_overlap_free(self, inst):
        arch, app = inst
        outcome = InitialMapper(arch).try_map_and_schedule(app)
        if outcome is None:
            return  # random instance genuinely unschedulable
        _, schedule = outcome
        schedule.validate()  # raises on overlap / horizon escape

    @given(small_application())
    @settings(**COMMON_SETTINGS)
    def test_im_output_passes_independent_verifier(self, inst):
        """Every IM design satisfies the full model re-checked from
        scratch by :mod:`repro.sched.verify`."""
        from repro.sched.verify import verify_design

        arch, app = inst
        outcome = InitialMapper(arch).try_map_and_schedule(app)
        if outcome is None:
            return
        mapping, schedule = outcome
        verify_design(schedule, [app], {app.name: mapping})

    @given(small_application())
    @settings(**COMMON_SETTINGS)
    def test_im_respects_deadlines_and_precedence(self, inst):
        arch, app = inst
        outcome = InitialMapper(arch).try_map_and_schedule(app)
        if outcome is None:
            return
        _, schedule = outcome
        graph = app.graphs[0]
        for k in range(schedule.horizon // graph.period):
            for msg in graph.messages:
                src = schedule.entry_of(msg.src, k)
                dst = schedule.entry_of(msg.dst, k)
                assert dst.start >= src.end or src.node_id != dst.node_id
                if src.node_id != dst.node_id:
                    occ = schedule.bus.occupancy_of(msg.id, k)
                    assert occ is not None
                    window = schedule.bus.bus.occurrence_window(
                        occ.node_id, occ.round_index
                    )
                    assert window.start >= src.end
                    assert dst.start >= window.end
            for proc in graph.processes:
                entry = schedule.entry_of(proc.id, k)
                assert entry.end <= k * graph.period + graph.deadline
                assert entry.start >= k * graph.period

    @given(small_application())
    @settings(**COMMON_SETTINGS)
    def test_mapping_respects_allowed_nodes(self, inst):
        arch, app = inst
        outcome = InitialMapper(arch).try_map_and_schedule(app)
        if outcome is None:
            return
        mapping, _ = outcome
        for proc in app.processes:
            assert mapping.node_of(proc.id) in proc.allowed_nodes

    @given(small_application())
    @settings(**COMMON_SETTINGS)
    def test_bus_slot_ownership(self, inst):
        """Messages only ever travel in their sender's slot."""
        arch, app = inst
        outcome = InitialMapper(arch).try_map_and_schedule(app)
        if outcome is None:
            return
        mapping, schedule = outcome
        for occ in schedule.bus.all_entries():
            msg = app.message(occ.message_id)
            assert occ.node_id == mapping.node_of(msg.src)

    @given(small_application())
    @settings(**COMMON_SETTINGS)
    def test_slot_capacity_never_exceeded(self, inst):
        arch, app = inst
        outcome = InitialMapper(arch).try_map_and_schedule(app)
        if outcome is None:
            return
        _, schedule = outcome
        for r in range(schedule.bus.rounds):
            for slot in arch.bus.slots:
                assert schedule.bus.free_bytes(slot.node_id, r) >= 0


class TestMetricProperties:
    @given(
        busy_blocks=st.lists(
            st.tuples(st.integers(0, 380), st.integers(1, 60)), max_size=8
        ),
        t_need=st.integers(0, 400),
    )
    @settings(**COMMON_SETTINGS)
    def test_c1p_bounded(self, busy_blocks, t_need):
        arch = random_architecture(1, slot_length=4, slot_capacity=8)
        schedule = SystemSchedule(arch, 400)
        for i, (start, length) in enumerate(busy_blocks):
            end = min(start + length, 400)
            window = Interval(start, end)
            if end > start and not schedule.busy_set("N0").overlaps(window):
                schedule.place_process(f"P{i}", i, "N0", start, end - start)
        fc = FutureCharacterization(
            t_min=100,
            t_need=t_need,
            b_need=0,
            wcet_distribution=DiscreteDistribution((10, 30), (0.5, 0.5)),
        )
        value = metric_c1p(schedule, fc)
        assert 0.0 <= value <= 100.0

    @given(
        busy_blocks=st.lists(
            st.tuples(st.integers(0, 380), st.integers(1, 60)), max_size=8
        )
    )
    @settings(**COMMON_SETTINGS)
    def test_c2p_bounded_by_window(self, busy_blocks):
        arch = random_architecture(1, slot_length=4, slot_capacity=8)
        schedule = SystemSchedule(arch, 400)
        for i, (start, length) in enumerate(busy_blocks):
            end = min(start + length, 400)
            window = Interval(start, end)
            if end > start and not schedule.busy_set("N0").overlaps(window):
                schedule.place_process(f"P{i}", i, "N0", start, end - start)
        fc = FutureCharacterization(t_min=100, t_need=10, b_need=0)
        value = metric_c2p(schedule, fc)
        assert 0 <= value <= 100  # one node, window length 100

    @given(small_application())
    @settings(**COMMON_SETTINGS)
    def test_objective_deterministic(self, inst):
        arch, app = inst
        outcome = InitialMapper(arch).try_map_and_schedule(app)
        if outcome is None:
            return
        _, schedule = outcome
        fc = FutureCharacterization(t_min=120, t_need=60, b_need=16)
        a = evaluate_design(schedule, fc)
        b = evaluate_design(schedule, fc)
        assert a == b
