"""Tests for process-to-node mappings."""

import pytest

from repro.model.application import Application
from repro.model.architecture import Architecture, Node
from repro.model.mapping import Mapping
from repro.model.process_graph import Process, ProcessGraph
from repro.utils.errors import MappingError


@pytest.fixture
def app() -> Application:
    g = ProcessGraph("g", 100)
    g.add_process(Process("P1", {"N1": 5, "N2": 8}))
    g.add_process(Process("P2", {"N2": 6}))
    return Application("a", [g])


@pytest.fixture
def arch() -> Architecture:
    return Architecture([Node("N1"), Node("N2")])


class TestAssignment:
    def test_assign_and_lookup(self, app, arch):
        m = Mapping(app, arch)
        m.assign("P1", "N1")
        assert m.node_of("P1") == "N1"
        assert m.get("P1") == "N1"
        assert "P1" in m

    def test_assign_replaces(self, app, arch):
        m = Mapping(app, arch)
        m.assign("P1", "N1")
        m.assign("P1", "N2")
        assert m.node_of("P1") == "N2"

    def test_constructor_assignment(self, app, arch):
        m = Mapping(app, arch, {"P1": "N1", "P2": "N2"})
        assert m.is_complete()

    def test_unknown_process_rejected(self, app, arch):
        with pytest.raises(MappingError):
            Mapping(app, arch).assign("P9", "N1")

    def test_unknown_node_rejected(self, app, arch):
        with pytest.raises(MappingError):
            Mapping(app, arch).assign("P1", "N9")

    def test_disallowed_node_rejected(self, app, arch):
        with pytest.raises(MappingError):
            Mapping(app, arch).assign("P2", "N1")

    def test_unassign(self, app, arch):
        m = Mapping(app, arch, {"P1": "N1"})
        m.unassign("P1")
        assert m.get("P1") is None
        m.unassign("P1")  # idempotent

    def test_node_of_unmapped_raises(self, app, arch):
        with pytest.raises(MappingError):
            Mapping(app, arch).node_of("P1")


class TestQueries:
    def test_len_and_items(self, app, arch):
        m = Mapping(app, arch, {"P1": "N1", "P2": "N2"})
        assert len(m) == 2
        assert dict(m.items()) == {"P1": "N1", "P2": "N2"}
        assert dict(iter(m)) == m.as_dict()

    def test_wcet_of(self, app, arch):
        m = Mapping(app, arch, {"P1": "N2"})
        assert m.wcet_of("P1") == 8

    def test_processes_on(self, app, arch):
        m = Mapping(app, arch, {"P1": "N2", "P2": "N2"})
        assert sorted(m.processes_on("N2")) == ["P1", "P2"]
        assert list(m.processes_on("N1")) == []

    def test_is_complete(self, app, arch):
        m = Mapping(app, arch, {"P1": "N1"})
        assert not m.is_complete()
        m.assign("P2", "N2")
        assert m.is_complete()

    def test_validate_complete_raises_with_names(self, app, arch):
        m = Mapping(app, arch, {"P1": "N1"})
        with pytest.raises(MappingError, match="P2"):
            m.validate_complete()

    def test_copy_is_independent(self, app, arch):
        m = Mapping(app, arch, {"P1": "N1"})
        c = m.copy()
        c.assign("P1", "N2")
        assert m.node_of("P1") == "N1"

    def test_equality(self, app, arch):
        a = Mapping(app, arch, {"P1": "N1"})
        b = Mapping(app, arch, {"P1": "N1"})
        c = Mapping(app, arch, {"P1": "N2"})
        assert a == b
        assert a != c

    def test_as_dict_is_snapshot(self, app, arch):
        m = Mapping(app, arch, {"P1": "N1"})
        d = m.as_dict()
        d["P1"] = "N2"
        assert m.node_of("P1") == "N1"
