"""Tests for processes, messages and process graphs."""

import pytest

from repro.model.process_graph import (
    Message,
    Process,
    ProcessGraph,
    build_graph,
)
from repro.utils.errors import InvalidModelError


class TestProcess:
    def test_basic(self):
        p = Process("P1", {"N1": 10, "N2": 20})
        assert p.allowed_nodes == ("N1", "N2")
        assert p.wcet_on("N1") == 10
        assert p.name == "P1"

    def test_custom_name(self):
        assert Process("P1", {"N1": 5}, name="sensor").name == "sensor"

    def test_average_wcet(self):
        assert Process("P1", {"N1": 10, "N2": 20}).average_wcet == 15.0

    def test_min_wcet(self):
        assert Process("P1", {"N1": 10, "N2": 20}).min_wcet == 10

    def test_empty_id_rejected(self):
        with pytest.raises(InvalidModelError):
            Process("", {"N1": 10})

    def test_empty_wcet_rejected(self):
        with pytest.raises(InvalidModelError):
            Process("P1", {})

    def test_zero_wcet_rejected(self):
        with pytest.raises(InvalidModelError):
            Process("P1", {"N1": 0})

    def test_negative_wcet_rejected(self):
        with pytest.raises(InvalidModelError):
            Process("P1", {"N1": -3})

    def test_wcet_on_disallowed_node(self):
        p = Process("P1", {"N1": 10})
        with pytest.raises(InvalidModelError):
            p.wcet_on("N9")

    def test_wcet_table_is_copied(self):
        table = {"N1": 10}
        p = Process("P1", table)
        table["N2"] = 99
        assert "N2" not in p.wcet


class TestMessage:
    def test_basic(self):
        m = Message("m1", "P1", "P2", 4)
        assert (m.src, m.dst, m.size) == ("P1", "P2", 4)

    def test_empty_id_rejected(self):
        with pytest.raises(InvalidModelError):
            Message("", "P1", "P2", 4)

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidModelError):
            Message("m1", "P1", "P1", 4)

    def test_zero_size_rejected(self):
        with pytest.raises(InvalidModelError):
            Message("m1", "P1", "P2", 0)


class TestProcessGraphConstruction:
    def test_period_deadline_defaults(self):
        g = ProcessGraph("g", 100)
        assert g.deadline == 100

    def test_deadline_validation(self):
        with pytest.raises(InvalidModelError):
            ProcessGraph("g", 100, deadline=150)
        with pytest.raises(InvalidModelError):
            ProcessGraph("g", 100, deadline=0)

    def test_zero_period_rejected(self):
        with pytest.raises(InvalidModelError):
            ProcessGraph("g", 0)

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidModelError):
            ProcessGraph("", 100)

    def test_duplicate_process_rejected(self):
        g = ProcessGraph("g", 100)
        g.add_process(Process("P1", {"N1": 5}))
        with pytest.raises(InvalidModelError):
            g.add_process(Process("P1", {"N1": 7}))

    def test_message_unknown_endpoint_rejected(self):
        g = ProcessGraph("g", 100)
        g.add_process(Process("P1", {"N1": 5}))
        with pytest.raises(InvalidModelError):
            g.add_message(Message("m1", "P1", "P9", 2))

    def test_duplicate_message_id_rejected(self):
        g = ProcessGraph("g", 100)
        g.add_process(Process("P1", {"N1": 5}))
        g.add_process(Process("P2", {"N1": 5}))
        g.add_process(Process("P3", {"N1": 5}))
        g.add_message(Message("m1", "P1", "P2", 2))
        with pytest.raises(InvalidModelError):
            g.add_message(Message("m1", "P2", "P3", 2))

    def test_parallel_edge_rejected(self):
        g = ProcessGraph("g", 100)
        g.add_process(Process("P1", {"N1": 5}))
        g.add_process(Process("P2", {"N1": 5}))
        g.add_message(Message("m1", "P1", "P2", 2))
        with pytest.raises(InvalidModelError):
            g.add_message(Message("m2", "P1", "P2", 2))

    def test_cycle_rejected_and_rolled_back(self):
        g = ProcessGraph("g", 100)
        for pid in ("P1", "P2", "P3"):
            g.add_process(Process(pid, {"N1": 5}))
        g.add_message(Message("m1", "P1", "P2", 2))
        g.add_message(Message("m2", "P2", "P3", 2))
        with pytest.raises(InvalidModelError):
            g.add_message(Message("m3", "P3", "P1", 2))
        # The offending edge must not linger.
        assert g.predecessors("P1") == []
        assert len(g.messages) == 2

    def test_validate_empty_graph(self):
        with pytest.raises(InvalidModelError):
            ProcessGraph("g", 100).validate()


class TestProcessGraphQueries:
    @pytest.fixture
    def diamond(self) -> ProcessGraph:
        return build_graph(
            "g",
            100,
            None,
            [Process(f"P{i}", {"N1": 10}) for i in range(4)],
            [
                Message("m0", "P0", "P1", 2),
                Message("m1", "P0", "P2", 2),
                Message("m2", "P1", "P3", 2),
                Message("m3", "P2", "P3", 2),
            ],
        )

    def test_len_and_contains(self, diamond):
        assert len(diamond) == 4
        assert "P2" in diamond
        assert "P9" not in diamond

    def test_lookup(self, diamond):
        assert diamond.process("P1").id == "P1"
        assert diamond.message("m2").dst == "P3"

    def test_unknown_lookup(self, diamond):
        with pytest.raises(InvalidModelError):
            diamond.process("nope")
        with pytest.raises(InvalidModelError):
            diamond.message("nope")

    def test_sources_sinks(self, diamond):
        assert diamond.sources() == ["P0"]
        assert diamond.sinks() == ["P3"]

    def test_predecessors_successors(self, diamond):
        assert sorted(diamond.successors("P0")) == ["P1", "P2"]
        assert sorted(diamond.predecessors("P3")) == ["P1", "P2"]

    def test_in_out_messages(self, diamond):
        assert {m.id for m in diamond.in_messages("P3")} == {"m2", "m3"}
        assert {m.id for m in diamond.out_messages("P0")} == {"m0", "m1"}

    def test_topological_order(self, diamond):
        order = diamond.topological_order()
        assert order.index("P0") < order.index("P1")
        assert order.index("P1") < order.index("P3")
        assert order.index("P2") < order.index("P3")

    def test_topological_order_deterministic(self, diamond):
        assert diamond.topological_order() == diamond.topological_order()

    def test_critical_path_length(self, diamond):
        # Three levels of 10 each (communication excluded).
        assert diamond.critical_path_length() == 30.0

    def test_total_min_wcet(self, diamond):
        assert diamond.total_min_wcet() == 40

    def test_as_networkx_is_copy(self, diamond):
        nxg = diamond.as_networkx()
        nxg.remove_node("P0")
        assert "P0" in diamond
