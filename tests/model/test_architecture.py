"""Tests for nodes and architectures."""

import pytest

from repro.model.architecture import Architecture, Node
from repro.tdma.bus import Slot, TdmaBus
from repro.utils.errors import InvalidModelError


class TestNode:
    def test_defaults(self):
        n = Node("N1")
        assert n.name == "N1"
        assert n.kind == "cpu"

    def test_custom(self):
        n = Node("N2", name="dsp-node", kind="asic")
        assert n.name == "dsp-node"
        assert n.kind == "asic"

    def test_empty_id_rejected(self):
        with pytest.raises(InvalidModelError):
            Node("")

    def test_default_speed_is_reference(self):
        assert Node("N1").speed == 1.0

    def test_custom_speed(self):
        assert Node("N1", speed=1.5).speed == 1.5

    def test_non_positive_speed_rejected(self):
        with pytest.raises(InvalidModelError):
            Node("N1", speed=0.0)
        with pytest.raises(InvalidModelError):
            Node("N1", speed=-2.0)

    def test_nan_speed_rejected(self):
        with pytest.raises(InvalidModelError):
            Node("N1", speed=float("nan"))


class TestArchitecture:
    def test_default_uniform_bus(self):
        arch = Architecture([Node("A"), Node("B")], slot_length=3, slot_capacity=7)
        assert arch.bus.round_length == 6
        assert arch.bus.slot_of("B").capacity == 7

    def test_explicit_bus(self):
        bus = TdmaBus([Slot("B", 2, 4), Slot("A", 5, 9)])
        arch = Architecture([Node("A"), Node("B")], bus)
        assert arch.bus.slot_index("B") == 0

    def test_no_nodes_rejected(self):
        with pytest.raises(InvalidModelError):
            Architecture([])

    def test_duplicate_node_rejected(self):
        with pytest.raises(InvalidModelError):
            Architecture([Node("A"), Node("A")])

    def test_bus_node_mismatch_rejected(self):
        bus = TdmaBus([Slot("A", 2, 4)])
        with pytest.raises(InvalidModelError):
            Architecture([Node("A"), Node("B")], bus)

    def test_bus_extra_node_rejected(self):
        bus = TdmaBus([Slot("A", 2, 4), Slot("C", 2, 4)])
        with pytest.raises(InvalidModelError):
            Architecture([Node("A")], bus)

    def test_queries(self):
        arch = Architecture([Node("A"), Node("B")])
        assert len(arch) == 2
        assert arch.node_ids == ["A", "B"]
        assert "A" in arch
        assert "Z" not in arch
        assert arch.node("B").id == "B"
        assert [n.id for n in arch] == ["A", "B"]

    def test_unknown_node_lookup(self):
        arch = Architecture([Node("A")])
        with pytest.raises(InvalidModelError):
            arch.node("Z")


class TestHeterogeneity:
    def test_homogeneous_by_default(self):
        arch = Architecture([Node("A"), Node("B")])
        assert not arch.is_heterogeneous
        assert arch.speed_of("A") == 1.0

    def test_heterogeneous_when_any_speed_differs(self):
        arch = Architecture([Node("A"), Node("B", speed=2.0)])
        assert arch.is_heterogeneous
        assert arch.speed_of("B") == 2.0

    def test_speed_of_unknown_node_rejected(self):
        arch = Architecture([Node("A")])
        with pytest.raises(InvalidModelError):
            arch.speed_of("Z")
