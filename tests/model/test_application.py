"""Tests for applications (collections of process graphs)."""

import pytest

from repro.model.application import Application, merge_applications
from repro.model.process_graph import Message, Process, ProcessGraph
from repro.utils.errors import InvalidModelError


def graph_with(prefix: str, period: int = 100, n: int = 2) -> ProcessGraph:
    g = ProcessGraph(f"{prefix}", period)
    for i in range(n):
        g.add_process(Process(f"{prefix}.P{i}", {"N1": 5}))
    if n >= 2:
        g.add_message(Message(f"{prefix}.m0", f"{prefix}.P0", f"{prefix}.P1", 2))
    return g


class TestApplicationConstruction:
    def test_empty_name_rejected(self):
        with pytest.raises(InvalidModelError):
            Application("")

    def test_duplicate_graph_rejected(self):
        app = Application("a", [graph_with("g0")])
        with pytest.raises(InvalidModelError):
            app.add_graph(graph_with("g0"))

    def test_duplicate_process_across_graphs_rejected(self):
        g1 = ProcessGraph("g1", 100)
        g1.add_process(Process("shared", {"N1": 5}))
        g2 = ProcessGraph("g2", 100)
        g2.add_process(Process("shared", {"N1": 5}))
        app = Application("a", [g1])
        with pytest.raises(InvalidModelError):
            app.add_graph(g2)

    def test_duplicate_message_across_graphs_rejected(self):
        def g(name, pids):
            graph = ProcessGraph(name, 100)
            for pid in pids:
                graph.add_process(Process(pid, {"N1": 5}))
            graph.add_message(Message("m-shared", pids[0], pids[1], 2))
            return graph

        app = Application("a", [g("g1", ["A", "B"])])
        with pytest.raises(InvalidModelError):
            app.add_graph(g("g2", ["C", "D"]))

    def test_validate_empty_application(self):
        with pytest.raises(InvalidModelError):
            Application("a").validate()


class TestApplicationQueries:
    @pytest.fixture
    def app(self) -> Application:
        return Application(
            "a", [graph_with("g0", period=100), graph_with("g1", period=50)]
        )

    def test_counts(self, app):
        assert app.process_count == 4
        assert app.message_count == 2
        assert len(app) == 2

    def test_iteration(self, app):
        assert [g.name for g in app] == ["g0", "g1"]

    def test_graph_lookup(self, app):
        assert app.graph("g1").period == 50
        with pytest.raises(InvalidModelError):
            app.graph("nope")

    def test_process_lookup(self, app):
        assert app.process("g0.P1").id == "g0.P1"
        with pytest.raises(InvalidModelError):
            app.process("nope")

    def test_graph_of(self, app):
        assert app.graph_of("g1.P0").name == "g1"
        with pytest.raises(InvalidModelError):
            app.graph_of("nope")

    def test_message_lookup(self, app):
        assert app.message("g0.m0").size == 2
        with pytest.raises(InvalidModelError):
            app.message("nope")

    def test_graph_of_message(self, app):
        assert app.graph_of_message("g1.m0").name == "g1"
        with pytest.raises(InvalidModelError):
            app.graph_of_message("nope")

    def test_contains(self, app):
        assert "g0.P0" in app
        assert "zzz" not in app

    def test_periods_and_hyperperiod(self, app):
        assert sorted(app.periods) == [50, 100]
        assert app.hyperperiod() == 100

    def test_total_min_wcet_per_hyperperiod(self, app):
        # g0: 2 procs * 5 * 1 instance; g1: 2 procs * 5 * 2 instances.
        assert app.total_min_wcet_per_hyperperiod() == 10 + 20

    def test_total_min_wcet_custom_horizon(self, app):
        assert app.total_min_wcet_per_hyperperiod(200) == 20 + 40

    def test_validate_ok(self, app):
        app.validate()


class TestMergeApplications:
    def test_merge_prefixes_graph_names(self):
        a = Application("a", [graph_with("g0")])
        b = Application("b", [graph_with("g1")])
        merged = merge_applications("all", [a, b])
        assert [g.name for g in merged.graphs] == ["a.g0", "b.g1"]
        assert merged.process_count == 4

    def test_merge_preserves_structure(self):
        a = Application("a", [graph_with("g0")])
        merged = merge_applications("all", [a])
        graph = merged.graph("a.g0")
        assert graph.period == 100
        assert {m.id for m in graph.messages} == {"g0.m0"}

    def test_merge_conflicting_process_ids_rejected(self):
        a = Application("a", [graph_with("g0")])
        b = Application("b", [graph_with("g0")])
        with pytest.raises(InvalidModelError):
            merge_applications("all", [a, b])
