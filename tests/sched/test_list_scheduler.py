"""Tests for priority-driven static cyclic list scheduling."""

import pytest

from repro.model.application import Application
from repro.model.mapping import Mapping
from repro.model.process_graph import Message, Process, ProcessGraph
from repro.sched.list_scheduler import ListScheduler
from repro.sched.schedule import SystemSchedule
from repro.utils.errors import SchedulingError

from tests.conftest import make_chain_graph


def all_on(app, arch, node_id) -> Mapping:
    return Mapping(app, arch, {p.id: node_id for p in app.processes})


class TestSingleGraph:
    def test_chain_same_node_back_to_back(self, arch2, chain_app):
        """Intra-node messages cost nothing; the chain packs tightly."""
        mapping = all_on(chain_app, arch2, "N1")
        schedule = ListScheduler(arch2).schedule(chain_app, mapping)
        e = [schedule.entry_of(f"P{i}", 0) for i in range(3)]
        assert (e[0].start, e[0].end) == (0, 8)
        assert (e[1].start, e[1].end) == (8, 17)
        assert (e[2].start, e[2].end) == (17, 23)
        assert len(list(schedule.bus.all_entries())) == 0

    def test_chain_cross_node_uses_bus(self, arch2, chain_app):
        mapping = Mapping(
            chain_app, arch2, {"P0": "N1", "P1": "N2", "P2": "N1"}
        )
        schedule = ListScheduler(arch2).schedule(chain_app, mapping)
        # m0 rides N1's slot: P0 ends at 8; N1 slots start at 0, 8, 16...
        occ0 = schedule.bus.occupancy_of("m0", 0)
        assert occ0 is not None
        window0 = schedule.bus.bus.occurrence_window("N1", occ0.round_index)
        assert window0.start >= 8
        # P1 starts only after m0 arrives (slot end).
        assert schedule.entry_of("P1", 0).start >= window0.end
        # m1 rides N2's slot after P1's finish.
        occ1 = schedule.bus.occupancy_of("m1", 0)
        window1 = schedule.bus.bus.occurrence_window("N2", occ1.round_index)
        assert window1.start >= schedule.entry_of("P1", 0).end
        assert schedule.entry_of("P2", 0).start >= window1.end

    def test_fork_join(self, arch2, fork_join_app):
        mapping = Mapping(
            fork_join_app,
            arch2,
            {"P0": "N1", "P1": "N2", "P2": "N1", "P3": "N1"},
        )
        schedule = ListScheduler(arch2).schedule(fork_join_app, mapping)
        p3 = schedule.entry_of("P3", 0)
        # P3 waits for both branches: P2 locally, P1 over the bus.
        occ = schedule.bus.occupancy_of("m2", 0)
        arrival = schedule.bus.arrival_time(occ)
        assert p3.start >= max(schedule.entry_of("P2", 0).end, arrival)

    def test_result_counters(self, arch2, chain_app):
        mapping = all_on(chain_app, arch2, "N1")
        result = ListScheduler(arch2).try_schedule(chain_app, mapping)
        assert result.success
        assert result.scheduled_jobs == result.total_jobs == 3


class TestPeriodicInstances:
    def test_instances_expand_over_horizon(self, arch2):
        app = Application("a", [make_chain_graph(period=40, deadline=40)])
        mapping = all_on(app, arch2, "N1")
        schedule = ListScheduler(arch2).schedule(
            app, mapping, horizon=80
        )
        for k in (0, 1):
            for i in range(3):
                assert schedule.entry_of(f"P{i}", k) is not None
        # Second instance released at 40.
        assert schedule.entry_of("P0", 1).start >= 40

    def test_deadline_enforced_per_instance(self, arch2):
        app = Application(
            "a", [make_chain_graph(period=40, deadline=24, wcets=(8, 9, 6))]
        )
        # 8 + 9 + 6 = 23 <= 24 works on one node...
        mapping = all_on(app, arch2, "N1")
        assert ListScheduler(arch2).try_schedule(app, mapping).success
        # ...but a cross-node hop adds bus latency and misses it.
        tight = Application(
            "a", [make_chain_graph(period=40, deadline=24, wcets=(8, 9, 6))]
        )
        mapping2 = Mapping(tight, arch2, {"P0": "N1", "P1": "N2", "P2": "N2"})
        result = ListScheduler(arch2).try_schedule(tight, mapping2)
        assert not result.success
        assert "deadline" in result.failure_reason

    def test_period_must_divide_horizon(self, arch2, chain_app):
        mapping = all_on(chain_app, arch2, "N1")
        with pytest.raises(SchedulingError):
            ListScheduler(arch2).try_schedule(chain_app, mapping, horizon=90)

    def test_two_graphs_interleave(self, arch2):
        app = Application(
            "a",
            [
                make_chain_graph("g0", period=80, prefix="a"),
                make_chain_graph("g1", period=40, prefix="b"),
            ],
        )
        mapping = all_on(app, arch2, "N1")
        # The short-period graph is urgent: give it higher priority so
        # its tight deadline (40 per instance) is respected.
        priorities = {"aP0": 3, "aP1": 2, "aP2": 1, "bP0": 30, "bP1": 20, "bP2": 10}
        schedule = ListScheduler(arch2).schedule(app, mapping, priorities=priorities)
        assert schedule.horizon == 80
        assert schedule.entry_of("bP0", 1) is not None
        schedule.validate()


class TestBaseSchedule:
    def test_schedules_around_frozen_reservations(self, arch2, chain_app):
        base = SystemSchedule(arch2, 80)
        base.place_process("existing", 0, "N1", 0, 30, frozen=True)
        mapping = all_on(chain_app, arch2, "N1")
        schedule = ListScheduler(arch2).schedule(chain_app, mapping, base=base)
        # The chain must start after the frozen block.
        assert schedule.entry_of("P0", 0).start >= 30
        # Frozen entry untouched.
        assert schedule.entry_of("existing", 0).frozen

    def test_base_is_not_mutated(self, arch2, chain_app):
        base = SystemSchedule(arch2, 80)
        base.place_process("existing", 0, "N1", 0, 30, frozen=True)
        mapping = all_on(chain_app, arch2, "N1")
        ListScheduler(arch2).schedule(chain_app, mapping, base=base)
        assert len(list(base.all_entries())) == 1

    def test_horizon_conflict_rejected(self, arch2, chain_app):
        base = SystemSchedule(arch2, 80)
        mapping = all_on(chain_app, arch2, "N1")
        with pytest.raises(SchedulingError):
            ListScheduler(arch2).try_schedule(
                chain_app, mapping, base=base, horizon=160
            )

    def test_failure_when_no_room(self, arch2, chain_app):
        base = SystemSchedule(arch2, 80)
        base.place_process("existing", 0, "N1", 0, 70, frozen=True)
        mapping = all_on(chain_app, arch2, "N1")
        result = ListScheduler(arch2).try_schedule(chain_app, mapping, base=base)
        assert not result.success


class TestPriorities:
    def test_priority_order_controls_packing(self, arch2):
        """Two independent processes on one node: the higher-priority
        one is scheduled first."""
        g = ProcessGraph("g", 80)
        g.add_process(Process("A", {"N1": 10}))
        g.add_process(Process("B", {"N1": 10}))
        app = Application("a", [g])
        mapping = all_on(app, arch2, "N1")
        s1 = ListScheduler(arch2).schedule(
            app, mapping, priorities={"A": 2.0, "B": 1.0}
        )
        assert s1.entry_of("A", 0).start == 0
        s2 = ListScheduler(arch2).schedule(
            app, mapping, priorities={"A": 1.0, "B": 2.0}
        )
        assert s2.entry_of("B", 0).start == 0

    def test_default_priorities_are_hcp(self, arch2, chain_app):
        mapping = all_on(chain_app, arch2, "N1")
        assert ListScheduler(arch2).try_schedule(chain_app, mapping).success


class TestMessageDelays:
    def test_delay_shifts_message_to_later_round(self, arch2, chain_app):
        mapping = Mapping(chain_app, arch2, {"P0": "N1", "P1": "N2", "P2": "N2"})
        sched0 = ListScheduler(arch2).schedule(chain_app, mapping)
        base_round = sched0.bus.occupancy_of("m0", 0).round_index
        sched1 = ListScheduler(arch2).schedule(
            chain_app, mapping, message_delays={"m0": 1}
        )
        assert sched1.bus.occupancy_of("m0", 0).round_index > base_round

    def test_delay_of_intra_node_message_is_noop(self, arch2, chain_app):
        mapping = all_on(chain_app, arch2, "N1")
        schedule = ListScheduler(arch2).schedule(
            chain_app, mapping, message_delays={"m0": 3}
        )
        assert len(list(schedule.bus.all_entries())) == 0

    def test_huge_delay_fails_schedulability(self, arch2, chain_app):
        mapping = Mapping(chain_app, arch2, {"P0": "N1", "P1": "N2", "P2": "N2"})
        result = ListScheduler(arch2).try_schedule(
            chain_app, mapping, message_delays={"m0": 1000}
        )
        assert not result.success


class TestMessageCapacity:
    def test_messages_pack_into_same_slot(self, arch2):
        """Two 4-byte messages fit one 8-byte slot occurrence."""
        g = ProcessGraph("g", 160)
        g.add_process(Process("A", {"N1": 4}))
        g.add_process(Process("B", {"N1": 4}))
        g.add_process(Process("C", {"N2": 4}))
        g.add_process(Process("D", {"N2": 4}))
        g.add_message(Message("m1", "A", "C", 4))
        g.add_message(Message("m2", "B", "D", 4))
        app = Application("a", [g])
        mapping = Mapping(app, arch2, {"A": "N1", "B": "N1", "C": "N2", "D": "N2"})
        schedule = ListScheduler(arch2).schedule(app, mapping)
        o1 = schedule.bus.occupancy_of("m1", 0)
        o2 = schedule.bus.occupancy_of("m2", 0)
        assert o1.round_index == o2.round_index

    def test_oversized_message_fails(self, arch2):
        g = ProcessGraph("g", 80)
        g.add_process(Process("A", {"N1": 4}))
        g.add_process(Process("B", {"N2": 4}))
        g.add_message(Message("m1", "A", "B", 99))  # > slot capacity 8
        app = Application("a", [g])
        mapping = Mapping(app, arch2, {"A": "N1", "B": "N2"})
        result = ListScheduler(arch2).try_schedule(app, mapping)
        assert not result.success
        assert "bus" in result.failure_reason

    def test_incomplete_mapping_rejected(self, arch2, chain_app):
        mapping = Mapping(chain_app, arch2, {"P0": "N1"})
        with pytest.raises(Exception):
            ListScheduler(arch2).try_schedule(chain_app, mapping)
