"""Tests for the structure-of-arrays scheduler core (``--engine-core``).

The contract under test: the array kernel of :mod:`repro.sched.arrays`
is **byte-identical** to the pinned object core -- schedules, decoded
traces, metrics, failure reasons and delta chains match on every
registered scenario family, and seeded strategy runs produce the same
design under either core.  Plus the core-selection plumbing: unknown
cores are rejected, and a missing numpy degrades ``array`` to
``object`` with a warning instead of failing.
"""

from __future__ import annotations

import functools
import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.initial_mapping import InitialMapper
from repro.core.mapping_heuristic import MappingHeuristic
from repro.core.simulated_annealing import SimulatedAnnealing
from repro.core.transformations import (
    CandidateDesign,
    DelayMessage,
    RemapProcess,
    SwapPriorities,
    remap_moves,
)
from repro.engine import evaluate_candidate
from repro.engine.compiled_spec import CompiledSpec
from repro.engine.delta import DeltaEvaluator
from repro.gen import families
from repro.gen.scenario import ScenarioParams, build_scenario
from repro.sched import arrays as arrays_module
from repro.sched.arrays import ArrayRunState, resolve_engine_core
from repro.sched.list_scheduler import ListScheduler
from repro.sched.trace import heap_key


@pytest.fixture(scope="module")
def spec():
    """A small but non-trivial scenario (frozen base + current app)."""
    return build_scenario(
        ScenarioParams(n_existing=12, n_current=8), seed=3
    ).spec()


def occupancy(schedule):
    """Canonical rendering of a schedule's full occupancy."""
    nodes = {
        node_id: sorted(
            (e.process_id, e.instance, e.start, e.end, e.frozen)
            for e in schedule.entries_on(node_id)
        )
        for node_id in schedule.architecture.node_ids
    }
    bus = sorted(
        (o.message_id, o.instance, o.node_id, o.round_index, o.size, o.frozen)
        for o in schedule.bus.all_entries()
    )
    return nodes, bus


def trace_identity(trace):
    """Canonical rendering of a schedule trace."""
    return (
        [tuple(event) for event in trace.events],
        trace.ready_at,
        trace.pop_index,
        trace.node_last,
        trace.bus_last,
    )


def im_design(spec, compiled):
    """The Initial Mapping candidate (the start of every search)."""
    outcome = InitialMapper(spec.architecture).try_map_and_schedule(
        spec.current, base=spec.base_schedule, compiled=compiled
    )
    assert outcome is not None
    return CandidateDesign(outcome[0], dict(compiled.default_priorities))


def systematic_moves(spec, design, limit_delays: int = 8):
    """Every remap, a ladder of swaps, and message delays up/down."""
    pids = [p.id for p in spec.current.processes]
    moves = list(remap_moves(design.mapping, pids))
    moves.extend(SwapPriorities(a, b) for a, b in zip(pids, pids[1:]))
    moves.extend(
        DelayMessage(m.id, delta)
        for m in spec.current.messages[:limit_delays]
        for delta in (+1, -1)
    )
    return moves


# ----------------------------------------------------------------------
# core selection and numpy degradation
# ----------------------------------------------------------------------
class TestCoreSelection:
    def test_known_cores_pass_through(self):
        assert resolve_engine_core("array") == "array"
        assert resolve_engine_core("object") == "object"

    def test_unknown_core_is_rejected(self):
        with pytest.raises(ValueError, match="unknown engine core"):
            resolve_engine_core("vectorised")

    def test_array_degrades_to_object_without_numpy(self, monkeypatch):
        monkeypatch.setattr(arrays_module, "HAVE_NUMPY", False)
        with pytest.warns(RuntimeWarning, match="degrades to"):
            assert resolve_engine_core("array") == "object"

    def test_object_stays_silent_without_numpy(self, monkeypatch):
        monkeypatch.setattr(arrays_module, "HAVE_NUMPY", False)
        assert resolve_engine_core("object") == "object"

    def test_compiled_spec_degrades_with_warning(self, spec, monkeypatch):
        monkeypatch.setattr(arrays_module, "HAVE_NUMPY", False)
        with pytest.warns(RuntimeWarning):
            compiled = CompiledSpec(spec, engine_core="array")
        assert compiled.engine_core == "object"
        assert not compiled.use_arrays

    def test_compiled_spec_rejects_unknown_core(self, spec):
        with pytest.raises(ValueError):
            CompiledSpec(spec, engine_core="simd")


# ----------------------------------------------------------------------
# the integer heap key is order-isomorphic to the legacy tuple key
# ----------------------------------------------------------------------
class TestRankIsomorphism:
    def test_rank_order_equals_legacy_heap_key_order(self, spec):
        compiled = CompiledSpec(spec)
        arr = compiled.arrays
        design = im_design(spec, compiled)
        cand = arr.lower_candidate(design)
        jobs = compiled.job_table.jobs
        legacy = sorted(
            range(arr.n_jobs),
            key=lambda j: heap_key(
                jobs[arr.job_keys[j]], design.priorities
            ),
        )
        assert cand.job_of_rank == legacy
        assert [cand.rank_of_job[j] for j in cand.job_of_rank] == list(
            range(arr.n_jobs)
        )


# ----------------------------------------------------------------------
# cold equivalence on every registered family
# ----------------------------------------------------------------------
@functools.lru_cache(maxsize=32)
def _family_cell(family_name: str, seed: int):
    family = families.get_family(family_name)
    spec = family.build(family.smallest_preset, seed=seed).spec()
    compiled_obj = CompiledSpec(spec, engine_core="object")
    compiled_arr = CompiledSpec(spec, engine_core="array")
    scheduler = ListScheduler(spec.architecture)
    return spec, compiled_obj, compiled_arr, scheduler


@pytest.mark.parametrize("family_name", families.family_names())
@pytest.mark.parametrize("seed", [1, 2])
def test_cold_equivalence_on_family(family_name, seed):
    """Schedules, traces and metrics match on the IM neighbourhood."""
    spec, compiled_obj, compiled_arr, scheduler = _family_cell(
        family_name, seed
    )
    arr = compiled_arr.arrays
    design = im_design(spec, compiled_obj)
    compared = 0
    for child in [design] + [
        m.apply(design) for m in systematic_moves(spec, design)
    ]:
        cold = evaluate_candidate(
            spec, compiled_obj, scheduler, child, record_trace=True
        )
        fast = evaluate_candidate(
            spec, compiled_arr, scheduler, child, record_trace=True
        )
        assert (cold is None) == (fast is None)
        if cold is None:
            continue
        assert cold.metrics == fast.metrics
        assert occupancy(cold.schedule) == occupancy(fast.schedule)
        assert isinstance(fast.trace, ArrayRunState)
        assert trace_identity(cold.trace) == trace_identity(
            arr.to_schedule_trace(fast.trace)
        )
        compared += 1
    assert compared > 0


def test_failure_reasons_match():
    """Invalid children report the object kernel's exact failure string."""
    spec = build_scenario(
        ScenarioParams(n_existing=14, n_current=10, current_utilization=0.3),
        seed=4,
    ).spec()
    compiled = CompiledSpec(spec)
    arr = compiled.arrays
    scheduler = ListScheduler(spec.architecture)
    design = im_design(spec, compiled)
    failures = 0
    for move in systematic_moves(spec, design, limit_delays=20):
        child = move.apply(design)
        cold = scheduler.try_schedule(
            spec.current,
            child.mapping,
            priorities=child.priorities,
            message_delays=child.message_delays,
            compiled=compiled,
        )
        state = arr.schedule_design(child)
        assert state.success == cold.success, move.describe()
        if cold.success:
            continue
        assert state.failure_reason == cold.failure_reason
        assert state.scheduled == cold.scheduled_jobs
        assert state.total == cold.total_jobs
        failures += 1
    assert failures > 0, "scenario produced no invalid children to compare"


# ----------------------------------------------------------------------
# delta chains: array resumes == object cold, children chain as parents
# ----------------------------------------------------------------------
@functools.lru_cache(maxsize=32)
def _delta_cell(family_name: str, seed: int):
    spec, compiled_obj, compiled_arr, scheduler = _family_cell(
        family_name, seed
    )
    delta = DeltaEvaluator(compiled_arr, scheduler)
    parent = evaluate_candidate(
        spec,
        compiled_arr,
        scheduler,
        im_design(spec, compiled_arr),
        record_trace=True,
    )
    assert parent is not None
    return spec, compiled_obj, compiled_arr, scheduler, delta, parent


@pytest.mark.parametrize("family_name", families.family_names())
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_array_delta_equals_object_cold_property(family_name, data):
    """Random move chains on every family: array delta == object cold."""
    seed = data.draw(st.sampled_from([1, 2]), label="scenario seed")
    spec, compiled_obj, compiled_arr, scheduler, delta, parent = _delta_cell(
        family_name, seed
    )
    arr = compiled_arr.arrays
    pids = [p.id for p in spec.current.processes]
    messages = [m.id for m in spec.current.messages]
    current = parent
    n_moves = data.draw(st.integers(min_value=1, max_value=5), label="moves")
    for _ in range(n_moves):
        kind = data.draw(
            st.sampled_from(
                ["remap", "swap", "delay"] if messages else ["remap", "swap"]
            ),
            label="kind",
        )
        if kind == "remap":
            pid = data.draw(st.sampled_from(pids), label="pid")
            options = [
                n
                for n in spec.current.process(pid).allowed_nodes
                if n != current.design.mapping.node_of(pid)
            ]
            if not options:
                continue
            move = RemapProcess(
                pid, data.draw(st.sampled_from(options), label="node")
            )
        elif kind == "swap":
            if len(pids) < 2:
                continue
            first = data.draw(st.sampled_from(pids), label="first")
            second = data.draw(st.sampled_from(pids), label="second")
            if first == second:
                continue
            move = SwapPriorities(first, second)
        else:
            move = DelayMessage(
                data.draw(st.sampled_from(messages), label="message"),
                data.draw(st.sampled_from([1, -1]), label="delta"),
            )
        child = move.apply(current.design)
        cold = evaluate_candidate(
            spec, compiled_obj, scheduler, child, record_trace=True
        )
        out, _ = delta.evaluate_move(current, move, child)
        assert (cold is None) == (out is None), move.describe()
        if cold is None:
            continue
        assert occupancy(cold.schedule) == occupancy(out.schedule)
        assert cold.metrics == out.metrics
        assert trace_identity(cold.trace) == trace_identity(
            arr.to_schedule_trace(out.trace)
        )
        current = out


# ----------------------------------------------------------------------
# seeded strategies: byte-identical designs under either core
# ----------------------------------------------------------------------
class TestSeededStrategyEquivalence:
    @pytest.mark.parametrize("family_name", ["uniform-baseline", "pipeline"])
    def test_mh_identical_across_cores(self, family_name):
        from repro.experiments.runner import design_identity

        family = families.get_family(family_name)
        spec = family.build(family.smallest_preset, seed=1).spec()
        reference = design_identity(
            MappingHeuristic(engine_core="object").design(spec)
        )
        for variant in (
            MappingHeuristic(engine_core="array"),
            MappingHeuristic(engine_core="array", jobs=2),
            MappingHeuristic(engine_core="array", use_delta=False),
        ):
            assert design_identity(variant.design(spec)) == reference

    def test_sa_identical_across_cores(self, spec):
        from repro.experiments.runner import design_identity

        reference = design_identity(
            SimulatedAnnealing(
                iterations=120, seed=3, engine_core="object"
            ).design(spec)
        )
        for variant in (
            SimulatedAnnealing(iterations=120, seed=3, engine_core="array"),
            SimulatedAnnealing(
                iterations=120, seed=3, engine_core="array", jobs=2
            ),
        ):
            assert design_identity(variant.design(spec)) == reference


# ----------------------------------------------------------------------
# run states cross process boundaries (the --jobs pool ships them)
# ----------------------------------------------------------------------
class TestRunStatePickling:
    def test_round_trip_preserves_columns_and_resumability(self, spec):
        compiled = CompiledSpec(spec, engine_core="array")
        arr = compiled.arrays
        design = im_design(spec, compiled)
        state = arr.schedule_design(design, record=True)
        assert state.success
        clone = pickle.loads(pickle.dumps(state))
        for name in (
            "ev_job", "ev_node", "ev_start", "ev_end", "ev_mptr",
            "mv_edge", "mv_round", "mv_arrival", "ready_at", "pop",
            "urg", "rank_of_job", "job_of_rank",
        ):
            assert getattr(clone, name) == getattr(state, name), name
        assert clone.rank_np is None  # dropped; rebuilt lazily from lists
        # The clone decodes to the same schedule and parents a resume.
        assert occupancy(arr.decode_schedule(clone)) == occupancy(
            arr.decode_schedule(state)
        )
        assert clone.as_numpy()["ev_job"].tolist() == state.ev_job
