"""Tests for ASCII Gantt rendering."""

import pytest

from repro.sched.render import render_gantt, render_slack_summary
from repro.sched.schedule import SystemSchedule


@pytest.fixture
def sched(arch2) -> SystemSchedule:
    s = SystemSchedule(arch2, 80)
    s.place_process("app.P1", 0, "N1", 0, 10)
    s.place_process("app.P2", 0, "N2", 20, 10, frozen=True)
    s.bus.place("app.m1", 0, "N1", 1, 4)
    return s


class TestGantt:
    def test_contains_rows_for_all_nodes_and_bus(self, sched):
        out = render_gantt(sched)
        lines = out.splitlines()
        assert lines[0].startswith("N1")
        assert lines[1].startswith("N2")
        assert lines[2].startswith("bus")

    def test_labels_appear(self, sched):
        out = render_gantt(sched)
        assert "P1" in out
        assert "P2" in out
        assert "m1" in out

    def test_frozen_marker(self, sched):
        n2_row = render_gantt(sched).splitlines()[1]
        assert "#" in n2_row

    def test_scale_respects_width_limit(self, sched):
        out = render_gantt(sched, scale=1, width_limit=20)
        for line in out.splitlines()[:3]:
            chart = line.split("|")[1]
            assert len(chart) <= 20

    def test_invalid_scale_rejected(self, sched):
        with pytest.raises(ValueError):
            render_gantt(sched, scale=0)

    def test_custom_labels(self, sched):
        out = render_gantt(sched, labels={"app.P1": "XX"})
        assert "XX" in out

    def test_empty_schedule_renders(self, arch2):
        out = render_gantt(SystemSchedule(arch2, 40))
        assert "N1" in out


class TestSlackSummary:
    def test_lists_gaps_and_bus(self, sched):
        out = render_slack_summary(sched)
        assert "N1" in out and "N2" in out and "bus" in out
        assert "[10,80)" in out

    def test_full_node_reports_none(self, arch2):
        s = SystemSchedule(arch2, 40)
        s.place_process("P", 0, "N1", 0, 40)
        out = render_slack_summary(s)
        assert "total slack 0 tu in gaps none" in out
