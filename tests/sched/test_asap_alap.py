"""Tests for contention-free ASAP/ALAP bounds and mobility."""

import pytest

from repro.model.application import Application
from repro.model.mapping import Mapping
from repro.sched.asap_alap import (
    alap_schedule,
    asap_schedule,
    critical_processes,
    time_bounds,
)
from repro.utils.errors import SchedulingError

from tests.conftest import make_chain_graph


@pytest.fixture
def chain(arch2):
    graph = make_chain_graph(period=100, deadline=100, wcets=(10, 20, 30))
    app = Application("a", [graph])
    mapping = Mapping(app, arch2, {p.id: "N1" for p in app.processes})
    return graph, mapping, arch2.bus


class TestAsap:
    def test_chain_same_node(self, chain):
        graph, mapping, bus = chain
        asap = asap_schedule(graph, mapping, bus)
        assert asap == {"P0": 0, "P1": 10, "P2": 30}

    def test_cross_node_adds_latency(self, arch2):
        graph = make_chain_graph(period=100, deadline=100, wcets=(10, 20, 30))
        app = Application("a", [graph])
        mapping = Mapping(
            app, arch2, {"P0": "N1", "P1": "N2", "P2": "N2"}
        )
        asap = asap_schedule(graph, mapping, arch2.bus)
        # N1's slot is 4 tu long; optimistic latency = 4.
        assert asap["P1"] == 10 + 4
        assert asap["P2"] == asap["P1"] + 20

    def test_fork_join_takes_max(self, arch2, fork_join_app):
        graph = fork_join_app.graphs[0]
        mapping = Mapping(
            fork_join_app, arch2, {p.id: "N1" for p in fork_join_app.processes}
        )
        asap = asap_schedule(graph, mapping, arch2.bus)
        # P3 waits for the slower of P1 (8+9=17) and P2 (8+10=18).
        assert asap["P3"] == 18


class TestAlap:
    def test_chain_same_node(self, chain):
        graph, mapping, bus = chain
        alap = alap_schedule(graph, mapping, bus)
        # Backwards from deadline 100: P2 at 70, P1 at 50, P0 at 40.
        assert alap == {"P0": 40, "P1": 50, "P2": 70}

    def test_custom_deadline(self, chain):
        graph, mapping, bus = chain
        alap = alap_schedule(graph, mapping, bus, deadline=60)
        assert alap == {"P0": 0, "P1": 10, "P2": 30}

    def test_infeasible_deadline_raises(self, chain):
        graph, mapping, bus = chain
        with pytest.raises(SchedulingError):
            alap_schedule(graph, mapping, bus, deadline=59)


class TestMobility:
    def test_mobility_zero_on_tight_deadline(self, chain):
        graph, mapping, bus = chain
        bounds = time_bounds(graph, mapping, bus, deadline=60)
        assert all(b.mobility == 0 for b in bounds.values())

    def test_mobility_equals_slack(self, chain):
        graph, mapping, bus = chain
        bounds = time_bounds(graph, mapping, bus)  # deadline 100
        assert all(b.mobility == 40 for b in bounds.values())

    def test_critical_processes_filter(self, arch2, fork_join_app):
        graph = fork_join_app.graphs[0]
        mapping = Mapping(
            fork_join_app, arch2, {p.id: "N1" for p in fork_join_app.processes}
        )
        critical = critical_processes(graph, mapping, arch2.bus, 56)
        # Deadline 80, critical path 8+10+6=24 via P2; P1 (wcet 9) has
        # one extra unit of mobility.
        assert set(critical) == {"P0", "P2", "P3"}

    def test_asap_never_exceeds_alap_when_feasible(self, chain):
        graph, mapping, bus = chain
        bounds = time_bounds(graph, mapping, bus)
        for b in bounds.values():
            assert b.asap <= b.alap
