"""Tests for the independent design verifier."""

import pytest

from repro.model.application import Application
from repro.model.mapping import Mapping
from repro.sched.list_scheduler import ListScheduler
from repro.sched.schedule import SystemSchedule
from repro.sched.verify import verify_design
from repro.utils.errors import SchedulingError

from tests.conftest import make_chain_graph


@pytest.fixture
def good_design(arch2):
    """A verified-good design built by the list scheduler."""
    app = Application("a", [make_chain_graph(period=40)])
    mapping = Mapping(app, arch2, {"P0": "N1", "P1": "N2", "P2": "N2"})
    schedule = ListScheduler(arch2).schedule(app, mapping, horizon=80)
    return schedule, app, mapping


class TestAcceptsValid:
    def test_scheduler_output_verifies(self, good_design):
        schedule, app, mapping = good_design
        verify_design(schedule, [app], {"a": mapping})

    def test_without_mapping(self, good_design):
        schedule, app, _ = good_design
        verify_design(schedule, [app])


class TestRejectsViolations:
    def test_missing_instance(self, arch2, good_design):
        _, app, mapping = good_design
        incomplete = SystemSchedule(arch2, 80)
        with pytest.raises(SchedulingError, match="missing"):
            verify_design(incomplete, [app])

    def test_wrong_duration(self, arch2, good_design):
        _, app, _ = good_design
        forged = SystemSchedule(arch2, 80)
        for k in (0, 1):
            base = 40 * k
            forged.place_process("P0", k, "N1", base, 5)  # WCET is 8
            forged.place_process("P1", k, "N2", base + 20, 9)
            forged.place_process("P2", k, "N2", base + 30, 6)
        with pytest.raises(SchedulingError, match="WCET"):
            verify_design(forged, [app])

    def test_deadline_violation(self, arch2):
        app = Application("a", [make_chain_graph(period=40, deadline=20)])
        forged = SystemSchedule(arch2, 40)
        forged.place_process("P0", 0, "N1", 0, 8)
        forged.place_process("P1", 0, "N1", 8, 9)
        forged.place_process("P2", 0, "N1", 17, 6)  # ends 23 > 20
        with pytest.raises(SchedulingError, match="deadline"):
            verify_design(forged, [app])

    def test_missing_bus_message(self, arch2):
        app = Application("a", [make_chain_graph(period=80)])
        forged = SystemSchedule(arch2, 80)
        forged.place_process("P0", 0, "N1", 0, 8)
        forged.place_process("P1", 0, "N2", 20, 9)  # m0 not on the bus
        forged.place_process("P2", 0, "N2", 29, 6)
        with pytest.raises(SchedulingError, match="not.*on the bus"):
            verify_design(forged, [app])

    def test_receiver_before_delivery(self, arch2):
        app = Application("a", [make_chain_graph(period=80)])
        forged = SystemSchedule(arch2, 80)
        forged.place_process("P0", 0, "N1", 0, 8)
        # N1's slot round 1 = [8, 12): delivery at 12, receiver at 10.
        forged.bus.place("m0", 0, "N1", 1, 4)
        forged.place_process("P1", 0, "N2", 10, 9)
        forged.place_process("P2", 0, "N2", 19, 6)
        with pytest.raises(SchedulingError, match="before delivery"):
            verify_design(forged, [app])

    def test_wrong_slot_owner(self, arch2):
        app = Application("a", [make_chain_graph(period=80)])
        forged = SystemSchedule(arch2, 80)
        forged.place_process("P0", 0, "N1", 0, 8)
        forged.bus.place("m0", 0, "N2", 2, 4)  # sender runs on N1!
        forged.place_process("P1", 0, "N2", 20, 9)
        forged.place_process("P2", 0, "N2", 29, 6)
        with pytest.raises(SchedulingError, match="slot"):
            verify_design(forged, [app])

    def test_intra_node_precedence(self, arch2):
        app = Application("a", [make_chain_graph(period=80)])
        forged = SystemSchedule(arch2, 80)
        forged.place_process("P0", 0, "N1", 10, 8)
        forged.place_process("P1", 0, "N1", 0, 9)  # before its sender
        forged.place_process("P2", 0, "N1", 30, 6)
        with pytest.raises(SchedulingError, match="before sender"):
            verify_design(forged, [app])

    def test_disallowed_node(self, arch2):
        g = make_chain_graph(nodes=("N1",))
        app = Application("a", [g])
        forged = SystemSchedule(arch2, 80)
        forged.place_process("P0", 0, "N2", 0, 8)  # only N1 allowed
        forged.place_process("P1", 0, "N2", 8, 9)
        forged.place_process("P2", 0, "N2", 17, 6)
        with pytest.raises(SchedulingError, match="disallowed"):
            verify_design(forged, [app])

    def test_mapping_mismatch(self, good_design):
        schedule, app, mapping = good_design
        wrong = mapping.copy()
        wrong.assign("P0", "N2")
        with pytest.raises(SchedulingError, match="mapped to"):
            verify_design(schedule, [app], {"a": wrong})

    def test_period_horizon_mismatch(self, arch2):
        app = Application("a", [make_chain_graph(period=80)])
        forged = SystemSchedule(arch2, 100)
        with pytest.raises(SchedulingError, match="divide"):
            verify_design(forged, [app])


class TestStrategyOutputsVerify:
    def test_mh_design_passes_verifier(self):
        from repro.gen.scenario import ScenarioParams, build_scenario
        from repro.core.strategy import make_strategy

        scenario = build_scenario(
            ScenarioParams(n_nodes=3, hyperperiod=2400,
                           n_existing=12, n_current=8),
            seed=3,
        )
        result = make_strategy("MH").design(scenario.spec())
        assert result.valid
        verify_design(
            result.schedule,
            [scenario.existing, scenario.current],
            {scenario.current.name: result.mapping},
        )
