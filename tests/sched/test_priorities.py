"""Tests for HCP and fallback priority functions."""

import pytest

from repro.model.application import Application
from repro.model.process_graph import Message, Process, ProcessGraph
from repro.sched.priorities import (
    graph_hcp_priorities,
    hcp_priorities,
    normalized,
    topological_priorities,
)
from repro.tdma.bus import Slot, TdmaBus


@pytest.fixture
def bus() -> TdmaBus:
    return TdmaBus([Slot("N1", 4, 8), Slot("N2", 4, 8)])  # round = 8


def chain(n=3, wcet=10, msg=4) -> ProcessGraph:
    g = ProcessGraph("g", 1000)
    for i in range(n):
        g.add_process(Process(f"P{i}", {"N1": wcet, "N2": wcet}))
    for i in range(n - 1):
        g.add_message(Message(f"m{i}", f"P{i}", f"P{i+1}", msg))
    return g


class TestGraphHcp:
    def test_sink_priority_is_own_wcet(self, bus):
        g = chain(3)
        prio = graph_hcp_priorities(g, bus)
        assert prio["P2"] == 10.0

    def test_priorities_decrease_along_chain(self, bus):
        prio = graph_hcp_priorities(chain(4), bus)
        assert prio["P0"] > prio["P1"] > prio["P2"] > prio["P3"]

    def test_chain_includes_communication(self, bus):
        # One message of 4 bytes <= avg capacity 8 -> 1 round = 8 tu.
        prio = graph_hcp_priorities(chain(2), bus)
        assert prio["P0"] == 10.0 + 8.0 + 10.0

    def test_large_message_needs_more_rounds(self, bus):
        g = ProcessGraph("g", 1000)
        g.add_process(Process("A", {"N1": 10}))
        g.add_process(Process("B", {"N1": 10}))
        g.add_message(Message("m", "A", "B", 20))  # ceil(20/8)=3 rounds
        prio = graph_hcp_priorities(g, bus)
        assert prio["A"] == 10.0 + 3 * 8.0 + 10.0

    def test_heterogeneous_average(self, bus):
        g = ProcessGraph("g", 1000)
        g.add_process(Process("A", {"N1": 10, "N2": 30}))
        prio = graph_hcp_priorities(g, bus)
        assert prio["A"] == 20.0

    def test_fork_takes_max_branch(self, bus):
        g = ProcessGraph("g", 1000)
        g.add_process(Process("A", {"N1": 10}))
        g.add_process(Process("short", {"N1": 5}))
        g.add_process(Process("long", {"N1": 50}))
        g.add_message(Message("m1", "A", "short", 4))
        g.add_message(Message("m2", "A", "long", 4))
        prio = graph_hcp_priorities(g, bus)
        assert prio["A"] == 10.0 + 8.0 + 50.0


class TestApplicationLevel:
    def test_hcp_covers_all_processes(self, bus):
        app = Application("a", [chain(3)])
        prio = hcp_priorities(app, bus)
        assert set(prio) == {"P0", "P1", "P2"}

    def test_topological_priorities(self):
        app = Application("a", [chain(3)])
        prio = topological_priorities(app)
        assert prio == {"P0": 3.0, "P1": 2.0, "P2": 1.0}


class TestNormalized:
    def test_scales_to_unit(self):
        out = normalized({"a": 5.0, "b": 10.0})
        assert out == {"a": 0.5, "b": 1.0}

    def test_empty(self):
        assert normalized({}) == {}

    def test_all_zero(self):
        assert normalized({"a": 0.0}) == {"a": 0.0}
