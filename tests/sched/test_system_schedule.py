"""Tests for the system schedule table (processor side)."""

import pytest

from repro.sched.schedule import SystemSchedule
from repro.utils.errors import SchedulingError
from repro.utils.intervals import Interval


@pytest.fixture
def sched(arch2) -> SystemSchedule:
    return SystemSchedule(arch2, horizon=100)


class TestPlace:
    def test_place_and_lookup(self, sched):
        entry = sched.place_process("P1", 0, "N1", 10, 5)
        assert entry.interval == Interval(10, 15)
        assert entry.duration == 5
        assert sched.entry_of("P1", 0) is entry

    def test_zero_horizon_rejected(self, arch2):
        with pytest.raises(SchedulingError):
            SystemSchedule(arch2, 0)

    def test_place_overlap_rejected(self, sched):
        sched.place_process("P1", 0, "N1", 10, 5)
        with pytest.raises(SchedulingError):
            sched.place_process("P2", 0, "N1", 12, 5)

    def test_place_adjacent_ok(self, sched):
        sched.place_process("P1", 0, "N1", 10, 5)
        sched.place_process("P2", 0, "N1", 15, 5)
        assert sched.busy_set("N1").total_length == 10

    def test_other_node_no_conflict(self, sched):
        sched.place_process("P1", 0, "N1", 10, 5)
        sched.place_process("P2", 0, "N2", 10, 5)

    def test_duplicate_instance_rejected(self, sched):
        sched.place_process("P1", 0, "N1", 10, 5)
        with pytest.raises(SchedulingError):
            sched.place_process("P1", 0, "N2", 30, 5)

    def test_separate_instances_ok(self, sched):
        sched.place_process("P1", 0, "N1", 10, 5)
        sched.place_process("P1", 1, "N1", 60, 5)

    def test_out_of_horizon_rejected(self, sched):
        with pytest.raises(SchedulingError):
            sched.place_process("P1", 0, "N1", 98, 5)
        with pytest.raises(SchedulingError):
            sched.place_process("P1", 0, "N1", -1, 5)

    def test_zero_duration_rejected(self, sched):
        with pytest.raises(SchedulingError):
            sched.place_process("P1", 0, "N1", 10, 0)

    def test_unknown_node_rejected(self, sched):
        with pytest.raises(SchedulingError):
            sched.place_process("P1", 0, "N9", 10, 5)


class TestRemove:
    def test_remove_frees_time(self, sched):
        sched.place_process("P1", 0, "N1", 10, 5)
        sched.remove_process("P1", 0)
        assert sched.entry_of("P1", 0) is None
        sched.place_process("P2", 0, "N1", 10, 5)

    def test_remove_unknown_rejected(self, sched):
        with pytest.raises(SchedulingError):
            sched.remove_process("P1", 0)

    def test_remove_frozen_rejected(self, sched):
        sched.place_process("P1", 0, "N1", 10, 5, frozen=True)
        with pytest.raises(SchedulingError):
            sched.remove_process("P1", 0)

    def test_remove_keeps_other_entries(self, sched):
        sched.place_process("P1", 0, "N1", 10, 5)
        sched.place_process("P2", 0, "N1", 20, 5)
        sched.remove_process("P1", 0)
        assert sched.busy_set("N1").intervals() == [Interval(20, 25)]


class TestFreeze:
    def test_freeze_all_marks_everything(self, sched):
        sched.place_process("P1", 0, "N1", 10, 5)
        sched.bus.place("m1", 0, "N1", 0, 2)
        sched.freeze_all()
        assert sched.entry_of("P1", 0).frozen
        assert sched.bus.occupancy_of("m1", 0).frozen

    def test_frozen_entries_cannot_be_removed(self, sched):
        sched.place_process("P1", 0, "N1", 10, 5)
        sched.freeze_all()
        with pytest.raises(SchedulingError):
            sched.remove_process("P1", 0)


class TestQueries:
    def test_entries_on_sorted(self, sched):
        sched.place_process("P2", 0, "N1", 50, 5)
        sched.place_process("P1", 0, "N1", 10, 5)
        assert [e.process_id for e in sched.entries_on("N1")] == ["P1", "P2"]

    def test_all_entries(self, sched):
        sched.place_process("P1", 0, "N1", 10, 5)
        sched.place_process("P2", 0, "N2", 20, 5)
        assert len(list(sched.all_entries())) == 2

    def test_earliest_fit_around_reservation(self, sched):
        sched.place_process("P1", 0, "N1", 10, 20)
        assert sched.earliest_fit("N1", 10, 0) == 0
        assert sched.earliest_fit("N1", 15, 0) == 30
        assert sched.earliest_fit("N1", 5, 12) == 30

    def test_slack_gaps(self, sched):
        sched.place_process("P1", 0, "N1", 10, 20)
        assert sched.slack_gaps("N1") == [Interval(0, 10), Interval(30, 100)]

    def test_slack_within(self, sched):
        sched.place_process("P1", 0, "N1", 10, 20)
        assert sched.slack_within("N1", Interval(0, 50)) == 30

    def test_total_slack_and_utilization(self, sched):
        sched.place_process("P1", 0, "N1", 10, 25)
        assert sched.total_slack("N1") == 75
        assert sched.utilization("N1") == 0.25
        assert sched.utilization("N2") == 0.0


class TestCopyValidate:
    def test_copy_independent(self, sched):
        sched.place_process("P1", 0, "N1", 10, 5)
        clone = sched.copy()
        clone.place_process("P2", 0, "N1", 20, 5)
        assert sched.entry_of("P2", 0) is None
        assert clone.entry_of("P1", 0) is not None

    def test_copy_includes_bus(self, sched):
        sched.bus.place("m1", 0, "N1", 0, 2)
        clone = sched.copy()
        assert clone.bus.occupancy_of("m1", 0) is not None
        clone.bus.remove("m1", 0)
        assert sched.bus.occupancy_of("m1", 0) is not None

    def test_validate_ok(self, sched):
        sched.place_process("P1", 0, "N1", 10, 5)
        sched.validate()
