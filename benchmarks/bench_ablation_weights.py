"""Ablation: objective-function weights (slide 14).

The combined objective weighs the two criteria; this bench runs MH
under first-criterion-only, second-criterion-only and balanced weights
and records the resulting raw metrics.  It demonstrates the documented
trade-off: optimizing only slack *sizes* can starve the periodic
*distribution* criterion and vice versa.

Run:  pytest benchmarks/bench_ablation_weights.py --benchmark-only
"""

import pytest

from repro.core.metrics import ObjectiveWeights, evaluate_design
from repro.core.mapping_heuristic import MappingHeuristic

WEIGHTINGS = {
    "balanced": ObjectiveWeights(),
    "first-criterion-only": ObjectiveWeights(w2p=0.0, w2m=0.0),
    "second-criterion-only": ObjectiveWeights(w1p=0.0, w1m=0.0),
}


@pytest.mark.parametrize("label", sorted(WEIGHTINGS))
def test_mh_weighting(benchmark, scenarios, label):
    scenario = scenarios[16]
    weights = WEIGHTINGS[label]

    result = benchmark.pedantic(
        lambda: MappingHeuristic().design(scenario.spec(weights)),
        rounds=1,
        iterations=1,
    )
    assert result.valid
    # Re-price every design with the *balanced* weights so the three
    # rows are comparable.
    balanced = evaluate_design(result.schedule, scenario.future)
    benchmark.extra_info["balanced_objective"] = round(balanced.objective, 2)
    benchmark.extra_info["c1p"] = round(balanced.c1p, 1)
    benchmark.extra_info["pen2p"] = round(balanced.penalty_2p, 1)


def test_second_criterion_weights_drive_c2(scenarios):
    """Turning the second criterion off must not yield a better
    second-criterion penalty than optimizing for it directly."""
    scenario = scenarios[16]
    only_first = MappingHeuristic().design(
        scenario.spec(WEIGHTINGS["first-criterion-only"])
    )
    only_second = MappingHeuristic().design(
        scenario.spec(WEIGHTINGS["second-criterion-only"])
    )
    m_first = evaluate_design(only_first.schedule, scenario.future)
    m_second = evaluate_design(only_second.schedule, scenario.future)
    assert m_second.penalty_2p <= m_first.penalty_2p + 1e-9
