"""Ablation: bin-packing policy behind the first design criterion.

The paper picks best-fit (slide 12).  This bench times C1P evaluation
under best-fit / first-fit / worst-fit on the same schedule and records
the metric each policy reports, showing (a) best-fit is not slower in
this implementation and (b) worst-fit systematically reports higher
unpacked fractions on fragmented slack (it burns large gaps early).

Run:  pytest benchmarks/bench_ablation_binpack.py --benchmark-only
"""

import pytest

from repro.core.metrics import metric_c1m, metric_c1p
from repro.core.strategy import make_strategy

POLICIES = ("best-fit", "first-fit", "worst-fit")


@pytest.fixture(scope="module")
def designed(scenarios):
    """An AH design (IM only): realistic, fragmented slack."""
    scenario = scenarios[16]
    result = make_strategy("AH").design(scenario.spec())
    assert result.valid
    return scenario, result.schedule


@pytest.mark.parametrize("policy", POLICIES)
def test_c1_policy(benchmark, designed, policy):
    scenario, schedule = designed

    def evaluate():
        return (
            metric_c1p(schedule, scenario.future, policy),
            metric_c1m(schedule, scenario.future, policy),
        )

    c1p, c1m = benchmark(evaluate)
    benchmark.extra_info["c1p_pct"] = round(c1p, 2)
    benchmark.extra_info["c1m_pct"] = round(c1m, 2)
    assert 0.0 <= c1p <= 100.0
    assert 0.0 <= c1m <= 100.0


def test_best_fit_packs_at_least_as_much_as_worst_fit(designed):
    """The design rationale for the paper's choice, checked end-to-end."""
    scenario, schedule = designed
    best = metric_c1p(schedule, scenario.future, "best-fit")
    worst = metric_c1p(schedule, scenario.future, "worst-fit")
    assert best <= worst + 1e-9
