"""Figure (slide 15): % deviation of AH and MH from near-optimal SA.

For each current-application size the benchmark times one full
three-strategy comparison and attaches the figure's data points --
``ah_deviation_pct`` and ``mh_deviation_pct`` -- as ``extra_info`` in
the pytest-benchmark report.  The paper's shape: AH deviates by a large
margin, MH stays close to SA.

Run:  pytest benchmarks/bench_fig_quality.py --benchmark-only
"""

import pytest

from repro.core.strategy import make_strategy
from repro.experiments.fig_quality import deviation

from benchmarks.conftest import BENCH_SA_ITERATIONS, BENCH_SIZES


@pytest.mark.parametrize("size", BENCH_SIZES)
def test_quality_vs_sa(benchmark, scenarios, size):
    """One full AH/MH/SA comparison on the size's scenario."""
    scenario = scenarios[size]

    def run_comparison():
        spec = scenario.spec()
        return {
            "AH": make_strategy("AH").design(spec),
            "MH": make_strategy("MH").design(spec),
            "SA": make_strategy(
                "SA", iterations=BENCH_SA_ITERATIONS, seed=1
            ).design(spec),
        }

    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    assert all(r.valid for r in results.values())

    sa = results["SA"].objective
    ah_dev = deviation(results["AH"].objective, sa)
    mh_dev = deviation(results["MH"].objective, sa)
    benchmark.extra_info["sa_objective"] = round(sa, 2)
    benchmark.extra_info["ah_deviation_pct"] = round(ah_dev, 1)
    benchmark.extra_info["mh_deviation_pct"] = round(mh_dev, 1)

    # The figure's qualitative claims.
    assert mh_dev >= -1e-6  # SA (with polish) dominates MH
    assert ah_dev >= mh_dev - 1e-6  # MH never behind AH
