"""Benchmarks pinning the end-to-end array evaluation speedup.

Per uniform-baseline preset (tiny/small/medium), one MH-style
neighbourhood of the Initial-Mapping design is *fully evaluated* --
scheduling pass plus metric pricing, the complete per-candidate cost a
search loop pays -- three ways:

* **array** -- :func:`repro.engine.evaluation.evaluate_candidate` under
  the array core: columnless structure-of-arrays pass, metrics priced
  directly on the state's columns (:mod:`repro.core.array_metrics`),
  **no** object-schedule decode (what ``--engine-core array`` runs per
  candidate since the array-native metric kernel);
* **object** -- the same function under the pinned object core:
  ``ListScheduler.try_schedule`` plus the object metric kernel (what
  ``--engine-core object`` runs per candidate);
* **decode-always** -- the pre-array-metrics shape of the array core:
  the array pass with trace columns, an object-schedule decode per
  candidate, and the object metric kernel over the decoded schedule.

The headline number is the per-candidate median speedup of the array
path over decode-always on the medium preset -- the end-to-end gain of
keeping evaluation inside the flat representation.  The medium
benchmark asserts ``MIN_EVAL_SPEEDUP`` even under
``--benchmark-disable``, so the CI smoke run catches an evaluation
path that silently loses its edge.

Results land in the repo-root ``BENCH_eval.json`` (see conftest).

Run:  pytest benchmarks/bench_eval.py --benchmark-only
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.core.improvement import DescentParams, generate_moves
from repro.core.initial_mapping import InitialMapper
from repro.core.metrics import evaluate_design
from repro.core.transformations import CandidateDesign
from repro.engine import CompiledSpec, evaluate_candidate
from repro.gen import families
from repro.sched.list_scheduler import ListScheduler

#: Uniform-baseline presets benchmarked, smallest to largest.
BENCH_PRESETS = ("tiny", "small", "medium")

#: CI floor: the array evaluation path must stay at least this many
#: times faster per candidate than the decode-always shape on the
#: medium preset (measured ~3.4x at introduction; the margin absorbs
#: scheduler noise on busy CI machines -- the committed
#: ``BENCH_eval.json`` from a quiet timed run is the >=3x record).
MIN_EVAL_SPEEDUP = 2.5

_CONTEXTS: dict = {}


def _context(preset: str):
    """Scenario, kernels and neighbourhood of one preset (built once)."""
    if preset in _CONTEXTS:
        return _CONTEXTS[preset]
    family = families.get_family("uniform-baseline")
    scenario = family.build(preset, seed=1)
    spec = scenario.spec()
    compiled_array = CompiledSpec(spec, engine_core="array")
    compiled_object = CompiledSpec(spec, engine_core="object")
    arrays = compiled_array.arrays
    scheduler = ListScheduler(spec.architecture)
    mapper = InitialMapper(spec.architecture)
    mapping, _ = mapper.try_map_and_schedule(
        spec.current, base=spec.base_schedule, compiled=compiled_array
    )
    parent = evaluate_candidate(
        spec,
        compiled_array,
        scheduler,
        CandidateDesign(mapping, dict(compiled_array.default_priorities)),
        record_trace=True,
    )
    moves = generate_moves(spec, parent, DescentParams(pool_size=8))
    children = [move.apply(parent.design) for move in moves]
    context = (spec, compiled_array, compiled_object, arrays, scheduler, children)
    _CONTEXTS[preset] = context
    return context


def _evaluate_array(spec, compiled_array, scheduler, child):
    return evaluate_candidate(spec, compiled_array, scheduler, child)


def _evaluate_object(spec, compiled_object, scheduler, child):
    return evaluate_candidate(spec, compiled_object, scheduler, child)


def _evaluate_decode_always(spec, arrays, child):
    state = arrays.schedule_design(child, record=False, columns=True)
    if not state.success:
        return None
    schedule = arrays.decode_schedule(state)
    return evaluate_design(schedule, spec.future, spec.weights)


def _per_candidate(fn, items, repeats: int = 7):
    """Median per-item wall time of ``fn`` over ``items``.

    One untimed warm-up pass precedes the measurement so caches
    (allocator pools, memoized packing inputs, lazy imports) are hot in
    smoke runs too, where no benchmark rounds ran before this.
    """
    for item in items:
        fn(item)
    times = []
    for item in items:
        best = min(_timed_once(fn, item) for _ in range(repeats))
        times.append(best)
    return statistics.median(times)


def _timed_once(fn, item):
    start = time.perf_counter()
    fn(item)
    return time.perf_counter() - start


def _speedup_info(preset: str):
    """Per-candidate medians and speedups for ``extra_info``."""
    spec, compiled_array, compiled_object, arrays, scheduler, children = (
        _context(preset)
    )
    median_array = _per_candidate(
        lambda child: _evaluate_array(spec, compiled_array, scheduler, child),
        children,
    )
    median_object = _per_candidate(
        lambda child: _evaluate_object(
            spec, compiled_object, scheduler, child
        ),
        children,
    )
    median_decode = _per_candidate(
        lambda child: _evaluate_decode_always(spec, arrays, child), children
    )
    return {
        "n_candidates": len(children),
        "median_array_us": round(median_array * 1e6, 1),
        "median_object_us": round(median_object * 1e6, 1),
        "median_decode_always_us": round(median_decode * 1e6, 1),
        "speedup_vs_object": round(median_object / median_array, 2),
        "speedup_vs_decode_always": round(median_decode / median_array, 2),
    }


@pytest.mark.parametrize("preset", BENCH_PRESETS)
def test_array_evaluation(benchmark, preset):
    """The array evaluation path over one neighbourhood, end to end."""
    spec, compiled_array, compiled_object, arrays, scheduler, children = (
        _context(preset)
    )

    def run():
        ok = 0
        for child in children:
            ok += (
                _evaluate_array(spec, compiled_array, scheduler, child)
                is not None
            )
        return ok

    benchmark(run)
    info = _speedup_info(preset)
    benchmark.extra_info["eval_record"] = "array"
    benchmark.extra_info["preset"] = preset
    benchmark.extra_info["scenario_jobs"] = compiled_array.total_jobs
    benchmark.extra_info.update(info)
    if preset == "medium":
        assert info["speedup_vs_decode_always"] >= MIN_EVAL_SPEEDUP, (
            "array evaluation lost its edge: "
            f"{info['speedup_vs_decode_always']:.2f}x over decode-always "
            f"< {MIN_EVAL_SPEEDUP}x on medium"
        )


@pytest.mark.parametrize("preset", BENCH_PRESETS)
def test_object_evaluation(benchmark, preset):
    """The same neighbourhood through the pinned object core."""
    spec, compiled_array, compiled_object, arrays, scheduler, children = (
        _context(preset)
    )

    def run():
        for child in children:
            _evaluate_object(spec, compiled_object, scheduler, child)

    benchmark(run)
    benchmark.extra_info["eval_record"] = "object"
    benchmark.extra_info["preset"] = preset
    benchmark.extra_info["scenario_jobs"] = compiled_object.total_jobs


@pytest.mark.parametrize("preset", BENCH_PRESETS)
def test_decode_always_evaluation(benchmark, preset):
    """The pre-array-metrics shape: decode + object metrics per candidate."""
    spec, compiled_array, compiled_object, arrays, scheduler, children = (
        _context(preset)
    )

    def run():
        for child in children:
            _evaluate_decode_always(spec, arrays, child)

    benchmark(run)
    benchmark.extra_info["eval_record"] = "decode-always"
    benchmark.extra_info["preset"] = preset
    benchmark.extra_info["scenario_jobs"] = compiled_array.total_jobs
