"""Ablation: MH candidate-pool size ("highest potential" selectivity).

The paper's MH "examines only transformations with the highest
potential".  This bench sweeps the candidate-pool size: a tiny pool is
fast but can miss the moves that matter; a huge pool approaches
exhaustive neighbourhood search at much higher cost.  The benchmark
table shows the runtime growth and ``extra_info`` the achieved
objective per pool size.

Run:  pytest benchmarks/bench_ablation_candidates.py --benchmark-only
"""

import pytest

from repro.core.mapping_heuristic import MappingHeuristic

POOL_SIZES = (2, 8, 24)


@pytest.mark.parametrize("pool", POOL_SIZES)
def test_mh_pool_size(benchmark, scenarios, pool):
    scenario = scenarios[16]
    result = benchmark.pedantic(
        lambda: MappingHeuristic(pool_size=pool).design(scenario.spec()),
        rounds=1,
        iterations=1,
    )
    assert result.valid
    benchmark.extra_info["objective"] = round(result.objective, 2)
    benchmark.extra_info["evaluations"] = result.evaluations


def test_larger_pool_never_worse(scenarios):
    """With identical descent rules, widening the examined neighbourhood
    can only improve (or tie) the steepest-descent outcome per step;
    end-to-end we assert the weaker, observable property that the
    largest pool is at least as good as the smallest."""
    scenario = scenarios[8]
    small = MappingHeuristic(pool_size=1).design(scenario.spec())
    large = MappingHeuristic(pool_size=64).design(scenario.spec())
    assert large.objective <= small.objective + 1e-9
