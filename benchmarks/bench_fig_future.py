"""Figure (slide 17): % of future applications mappable after AH vs MH.

For each current-application size the benchmark designs the scenario
with AH and MH, then times the future-fit check over a batch of
concrete future applications; the mapped percentages land in
``extra_info``.  The paper's claim: MH designs accept far more future
applications than AH designs.

Run:  pytest benchmarks/bench_fig_future.py --benchmark-only
"""

import pytest

from repro.core.strategy import fits_future_application, make_strategy
from repro.gen.scenario import generate_future_application
from repro.utils.rng import spawn_rngs

from benchmarks.conftest import BENCH_SIZES

N_FUTURES = 8


@pytest.mark.parametrize("size", BENCH_SIZES)
def test_future_mappability(benchmark, scenarios, size):
    scenario = scenarios[size]
    designs = {
        name: make_strategy(name).design(scenario.spec())
        for name in ("AH", "MH")
    }
    assert all(r.valid for r in designs.values())
    futures = [
        generate_future_application(scenario, rng=rng, name=f"future{i}")
        for i, rng in enumerate(spawn_rngs(size * 1000 + 1, N_FUTURES))
    ]

    def check_all():
        hits = {"AH": 0, "MH": 0}
        for future_app in futures:
            for name, result in designs.items():
                if fits_future_application(
                    result.schedule, future_app, scenario.architecture
                ):
                    hits[name] += 1
        return hits

    hits = benchmark.pedantic(check_all, rounds=1, iterations=1)
    benchmark.extra_info["ah_mapped_pct"] = round(100 * hits["AH"] / N_FUTURES)
    benchmark.extra_info["mh_mapped_pct"] = round(100 * hits["MH"] / N_FUTURES)

    # The figure's qualitative claim: the future-aware design accepts
    # at least as many future applications as the ad-hoc one.
    assert hits["MH"] >= hits["AH"]
