"""Benchmarks pinning the array scheduler core's speedup.

Per uniform-baseline preset (tiny/small/medium), one MH-style
neighbourhood of the Initial-Mapping design is *scheduled* three ways
-- scheduling only, no metrics, because the metric kernel is shared by
both cores and would dilute the comparison (Amdahl):

* **array** -- :meth:`repro.sched.arrays.ArraySpec.schedule_design`:
  the structure-of-arrays kernel with integer heap keys and column
  traces (what ``--engine-core array`` runs per candidate);
* **object** -- ``ListScheduler.try_schedule`` against the compiled
  spec with trace recording (what ``--engine-core object`` runs per
  candidate);
* **scratch** -- ``try_schedule`` without a compiled spec: the
  job-table and base-template compilation repeated per candidate (the
  pre-``CompiledSpec`` evaluation shape).

The headline number is the per-candidate median speedup of the array
kernel over the object kernel on the medium preset; array over scratch
shows the full distance from the naive shape.  The medium benchmark
asserts ``MIN_ARRAY_SPEEDUP`` even under ``--benchmark-disable``, so
the CI smoke run catches a kernel that silently loses its edge.

Results land in the repo-root ``BENCH_sched.json`` (see conftest).

Run:  pytest benchmarks/bench_sched.py --benchmark-only
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.core.improvement import DescentParams, generate_moves
from repro.core.initial_mapping import InitialMapper
from repro.core.transformations import CandidateDesign
from repro.engine import CompiledSpec, evaluate_candidate
from repro.gen import families
from repro.sched.list_scheduler import ListScheduler

#: Uniform-baseline presets benchmarked, smallest to largest.
BENCH_PRESETS = ("tiny", "small", "medium")

#: CI floor: the array kernel must stay at least this many times
#: faster than the object kernel per candidate on the medium preset
#: (measured ~6.6x at introduction; the margin absorbs machine noise).
MIN_ARRAY_SPEEDUP = 3.0

_CONTEXTS: dict = {}


def _context(preset: str):
    """Scenario, kernels and neighbourhood of one preset (built once)."""
    if preset in _CONTEXTS:
        return _CONTEXTS[preset]
    family = families.get_family("uniform-baseline")
    scenario = family.build(preset, seed=1)
    spec = scenario.spec()
    compiled = CompiledSpec(spec)
    arrays = compiled.arrays
    scheduler = ListScheduler(spec.architecture)
    mapper = InitialMapper(spec.architecture)
    mapping, _ = mapper.try_map_and_schedule(
        spec.current, base=spec.base_schedule, compiled=compiled
    )
    parent = evaluate_candidate(
        spec,
        compiled,
        scheduler,
        CandidateDesign(mapping, dict(compiled.default_priorities)),
        record_trace=True,
    )
    moves = generate_moves(spec, parent, DescentParams(pool_size=8))
    children = [move.apply(parent.design) for move in moves]
    context = (spec, compiled, arrays, scheduler, children)
    _CONTEXTS[preset] = context
    return context


def _schedule_array(arrays, child):
    return arrays.schedule_design(child, record=True)


def _schedule_object(spec, compiled, scheduler, child):
    return scheduler.try_schedule(
        spec.current,
        child.mapping,
        priorities=child.priorities,
        message_delays=child.message_delays,
        compiled=compiled,
        record_trace=True,
    )


def _schedule_scratch(spec, scheduler, child):
    return scheduler.try_schedule(
        spec.current,
        child.mapping,
        base=spec.base_schedule,
        priorities=child.priorities,
        message_delays=child.message_delays,
        record_trace=True,
    )


def _per_candidate(fn, items, repeats: int = 3):
    """Median per-item wall time of ``fn`` over ``items``."""
    times = []
    for item in items:
        best = min(_timed_once(fn, item) for _ in range(repeats))
        times.append(best)
    return statistics.median(times)


def _timed_once(fn, item):
    start = time.perf_counter()
    fn(item)
    return time.perf_counter() - start


def _speedup_info(preset: str):
    """Per-candidate medians and speedups for ``extra_info``."""
    spec, compiled, arrays, scheduler, children = _context(preset)
    median_array = _per_candidate(
        lambda child: _schedule_array(arrays, child), children
    )
    median_object = _per_candidate(
        lambda child: _schedule_object(spec, compiled, scheduler, child),
        children,
    )
    median_scratch = _per_candidate(
        lambda child: _schedule_scratch(spec, scheduler, child), children
    )
    return {
        "n_candidates": len(children),
        "median_array_us": round(median_array * 1e6, 1),
        "median_object_us": round(median_object * 1e6, 1),
        "median_scratch_us": round(median_scratch * 1e6, 1),
        "speedup_vs_object": round(median_object / median_array, 2),
        "speedup_vs_scratch": round(median_scratch / median_array, 2),
    }


@pytest.mark.parametrize("preset", BENCH_PRESETS)
def test_array_kernel(benchmark, preset):
    """The array kernel over one neighbourhood, traced per candidate."""
    spec, compiled, arrays, scheduler, children = _context(preset)

    def run():
        ok = 0
        for child in children:
            ok += arrays.schedule_design(child, record=True).success
        return ok

    benchmark(run)
    info = _speedup_info(preset)
    benchmark.extra_info["sched_record"] = "array"
    benchmark.extra_info["preset"] = preset
    benchmark.extra_info["scenario_jobs"] = compiled.total_jobs
    benchmark.extra_info.update(info)
    if preset == "medium":
        assert info["speedup_vs_object"] >= MIN_ARRAY_SPEEDUP, (
            f"array kernel lost its edge: {info['speedup_vs_object']:.2f}x "
            f"over the object kernel < {MIN_ARRAY_SPEEDUP}x on medium"
        )


@pytest.mark.parametrize("preset", BENCH_PRESETS)
def test_object_kernel(benchmark, preset):
    """The same neighbourhood through the pinned object kernel."""
    spec, compiled, arrays, scheduler, children = _context(preset)

    def run():
        for child in children:
            _schedule_object(spec, compiled, scheduler, child)

    benchmark(run)
    benchmark.extra_info["sched_record"] = "object"
    benchmark.extra_info["preset"] = preset
    benchmark.extra_info["scenario_jobs"] = compiled.total_jobs


@pytest.mark.parametrize("preset", BENCH_PRESETS)
def test_scratch_kernel(benchmark, preset):
    """The pre-compilation shape: job table rebuilt per candidate."""
    spec, compiled, arrays, scheduler, children = _context(preset)

    def run():
        for child in children:
            _schedule_scratch(spec, scheduler, child)

    benchmark(run)
    benchmark.extra_info["sched_record"] = "scratch"
    benchmark.extra_info["preset"] = preset
    benchmark.extra_info["scenario_jobs"] = compiled.total_jobs
