"""Micro-benchmarks of the library's hot paths.

These are the inner loops every strategy evaluation exercises:

* list scheduling of the current application around frozen reservations,
* the full four-metric objective evaluation,
* best-fit bin packing at metric scale,
* schedule copying (the per-candidate setup cost).

Run:  pytest benchmarks/bench_micro.py --benchmark-only
"""

import pytest

from repro.core.binpack import best_fit
from repro.core.initial_mapping import InitialMapper
from repro.core.metrics import evaluate_design
from repro.sched.list_scheduler import ListScheduler
from repro.sched.priorities import hcp_priorities


@pytest.fixture(scope="module")
def prepared(scenarios):
    scenario = scenarios[16]
    mapper = InitialMapper(scenario.architecture)
    mapping, schedule = mapper.map_and_schedule(
        scenario.current, base=scenario.base_schedule
    )
    priorities = hcp_priorities(scenario.current, scenario.architecture.bus)
    return scenario, mapping, priorities, schedule


def test_list_scheduling(benchmark, prepared):
    """One candidate evaluation's scheduling half."""
    scenario, mapping, priorities, _ = prepared
    scheduler = ListScheduler(scenario.architecture)

    result = benchmark(
        lambda: scheduler.try_schedule(
            scenario.current,
            mapping,
            base=scenario.base_schedule,
            priorities=priorities,
        )
    )
    assert result.success


def test_metric_evaluation(benchmark, prepared):
    """One candidate evaluation's metric half (C1P, C1m, C2P, C2m)."""
    scenario, _, _, schedule = prepared
    metrics = benchmark(lambda: evaluate_design(schedule, scenario.future))
    assert metrics.objective >= 0


def test_initial_mapping(benchmark, prepared):
    """The full IM step (HCP mapping + scheduling)."""
    scenario, _, _, _ = prepared
    mapper = InitialMapper(scenario.architecture)
    outcome = benchmark(
        lambda: mapper.try_map_and_schedule(
            scenario.current, base=scenario.base_schedule
        )
    )
    assert outcome is not None


def test_best_fit_at_metric_scale(benchmark):
    """~2000 objects into ~1200 bins, the C1m workload shape."""
    objects = [2 + (i * 7) % 7 for i in range(2000)]
    bins = [16] * 1200

    result = benchmark(lambda: best_fit(objects, bins))
    assert result.placed_total > 0


def test_schedule_copy(benchmark, prepared):
    """Per-candidate base-schedule copy cost."""
    scenario, _, _, _ = prepared
    base = scenario.base_schedule
    clone = benchmark(base.copy)
    assert clone.horizon == base.horizon
