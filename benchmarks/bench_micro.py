"""Micro-benchmarks of the library's hot paths.

These are the inner loops every strategy evaluation exercises:

* list scheduling of the current application around frozen reservations,
  uncompiled (the seed path) and through a precompiled spec,
* one full engine evaluation and its cached re-evaluation,
* the full four-metric objective evaluation,
* best-fit bin packing at metric scale,
* schedule copying (the per-candidate setup cost).

The compiled-vs-uncompiled and cached-re-evaluation pairs track the
evaluation engine's speedup in the perf trajectory.

Run:  pytest benchmarks/bench_micro.py --benchmark-only
"""

import pytest

from repro.core.binpack import best_fit
from repro.core.initial_mapping import InitialMapper
from repro.core.metrics import evaluate_design
from repro.core.strategy import DesignEvaluator
from repro.core.transformations import CandidateDesign
from repro.engine import CompiledSpec
from repro.sched.list_scheduler import ListScheduler
from repro.sched.priorities import hcp_priorities


@pytest.fixture(scope="module")
def prepared(scenarios):
    scenario = scenarios[16]
    mapper = InitialMapper(scenario.architecture)
    mapping, schedule = mapper.map_and_schedule(
        scenario.current, base=scenario.base_schedule
    )
    priorities = hcp_priorities(scenario.current, scenario.architecture.bus)
    return scenario, mapping, priorities, schedule


@pytest.fixture(scope="module")
def candidate(prepared):
    _, mapping, priorities, _ = prepared
    return CandidateDesign(mapping, dict(priorities))


def test_list_scheduling(benchmark, prepared):
    """One candidate evaluation's scheduling half."""
    scenario, mapping, priorities, _ = prepared
    scheduler = ListScheduler(scenario.architecture)

    result = benchmark(
        lambda: scheduler.try_schedule(
            scenario.current,
            mapping,
            base=scenario.base_schedule,
            priorities=priorities,
        )
    )
    assert result.success


def test_compiled_list_scheduling(benchmark, prepared):
    """The same candidate scheduling, through a precompiled spec.

    Compare against ``test_list_scheduling``: the delta is the
    per-candidate cost of re-expanding jobs, re-validating the horizon
    and re-deriving priorities that :class:`CompiledSpec` eliminates.
    """
    scenario, mapping, priorities, _ = prepared
    compiled = CompiledSpec(scenario.spec())
    scheduler = ListScheduler(scenario.architecture)

    result = benchmark(
        lambda: scheduler.try_schedule(
            scenario.current,
            mapping,
            priorities=priorities,
            compiled=compiled,
        )
    )
    assert result.success


def test_engine_first_evaluation(benchmark, prepared, candidate):
    """One cold engine evaluation (schedule + metrics, cache miss)."""
    scenario, _, _, _ = prepared
    evaluator = DesignEvaluator(scenario.spec(), use_cache=False)

    out = benchmark(lambda: evaluator.evaluate(candidate))
    assert out is not None


def test_engine_cached_reevaluation(benchmark, prepared, candidate):
    """Re-evaluating a seen candidate: signature + cache hit only.

    This is the engine's repeated-evaluation fast path; SA revisits
    rejected design points constantly, so this bound dominates hot
    search loops.
    """
    scenario, _, _, _ = prepared
    evaluator = DesignEvaluator(scenario.spec(), use_cache=True)
    assert evaluator.evaluate(candidate) is not None  # warm the cache

    out = benchmark(lambda: evaluator.evaluate(candidate))
    assert out is not None
    assert evaluator.cache_hits > 0


def test_metric_evaluation(benchmark, prepared):
    """One candidate evaluation's metric half (C1P, C1m, C2P, C2m)."""
    scenario, _, _, schedule = prepared
    metrics = benchmark(lambda: evaluate_design(schedule, scenario.future))
    assert metrics.objective >= 0


def test_initial_mapping(benchmark, prepared):
    """The full IM step (HCP mapping + scheduling)."""
    scenario, _, _, _ = prepared
    mapper = InitialMapper(scenario.architecture)
    outcome = benchmark(
        lambda: mapper.try_map_and_schedule(
            scenario.current, base=scenario.base_schedule
        )
    )
    assert outcome is not None


def test_best_fit_at_metric_scale(benchmark):
    """~2000 objects into ~1200 bins, the C1m workload shape."""
    objects = [2 + (i * 7) % 7 for i in range(2000)]
    bins = [16] * 1200

    result = benchmark(lambda: best_fit(objects, bins))
    assert result.placed_total > 0


def test_schedule_copy(benchmark, prepared):
    """Per-candidate base-schedule copy cost."""
    scenario, _, _, _ = prepared
    base = scenario.base_schedule
    clone = benchmark(base.copy)
    assert clone.horizon == base.horizon
