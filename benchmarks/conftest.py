"""Shared fixtures for the benchmark harness.

The benchmarks double as the figure-regeneration harness: each
``bench_fig_*`` file times the strategies on generated scenarios and
attaches the figure's data points (deviations, mapped percentages) as
``extra_info`` so they appear in the pytest-benchmark report.

Scale: laptop defaults (a few minutes for the whole directory).  The
paper-scale run is driven through the CLI instead
(``python -m repro.experiments all --paper-scale``).
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentConfig
from repro.gen.scenario import Scenario, ScenarioParams, build_scenario

#: Current-application sizes benchmarked per figure (paper: 40..320).
BENCH_SIZES = (8, 16, 24)

#: Existing-application size (paper: 400).
BENCH_EXISTING = 40

#: SA iteration budget for the reference strategy.
BENCH_SA_ITERATIONS = 400


def bench_params(size: int) -> ScenarioParams:
    """Scenario parameters of one benchmark cell."""
    return ScenarioParams(
        n_nodes=6,
        hyperperiod=4800,
        n_existing=BENCH_EXISTING,
        n_current=size,
    )


@pytest.fixture(scope="session")
def scenarios() -> dict:
    """One scenario per benchmarked current-application size."""
    return {size: build_scenario(bench_params(size), seed=1) for size in BENCH_SIZES}


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return ExperimentConfig(
        current_sizes=BENCH_SIZES,
        n_existing=BENCH_EXISTING,
        seeds=(1,),
        sa_iterations=BENCH_SA_ITERATIONS,
        future_apps_per_scenario=8,
    )
