"""Shared fixtures for the benchmark harness.

The benchmarks double as the figure-regeneration harness: each
``bench_fig_*`` file times the strategies on generated scenarios and
attaches the figure's data points (deviations, mapped percentages) as
``extra_info`` so they appear in the pytest-benchmark report.

Every *timed* benchmark run additionally writes
``benchmarks/BENCH_engine.json``: one machine-readable record per
benchmark (median wall time, scenario size and delta on/off taken from
``extra_info``), so the performance trajectory is tracked across PRs
as data instead of living only in prose.  ``--benchmark-disable``
smoke runs leave the file untouched.

Scale: laptop defaults (a few minutes for the whole directory).  The
paper-scale run is driven through the CLI instead
(``python -m repro.experiments all --paper-scale``).
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

import pytest

from repro.experiments.runner import ExperimentConfig
from repro.gen.scenario import Scenario, ScenarioParams, build_scenario

#: Where the machine-readable benchmark results land (committed, so
#: the perf trajectory across PRs is diffable).
BENCH_RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_engine.json"

#: The search/portfolio trajectory record: repo-root, so the racing
#: wall-clock claim (portfolio <= slowest single strategy) is checked
#: where every PR's reviewer looks first.
BENCH_SEARCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_search.json"

#: The scheduler-core trajectory record (bench_sched): repo-root, so
#: the array-over-object speedup claim is diffable per PR.
BENCH_SCHED_PATH = Path(__file__).resolve().parent.parent / "BENCH_sched.json"

#: The end-to-end evaluation trajectory record (bench_eval): repo-root,
#: so the array-metrics-over-decode-always speedup claim is diffable
#: per PR.
BENCH_EVAL_PATH = Path(__file__).resolve().parent.parent / "BENCH_eval.json"


def _merge_rows(path: Path, rows) -> list:
    """Merge ``rows`` into the file's stored results by benchmark name.

    A partial run (one bench file, or an aborted session) updates only
    the rows it actually timed and keeps every other file's trajectory
    data intact.
    """
    merged = {}
    if path.exists():
        try:
            previous = json.loads(path.read_text())
            merged = {row["name"]: row for row in previous.get("results", ())}
        except (ValueError, KeyError, TypeError):
            merged = {}
    merged.update({row["name"]: row for row in rows})
    return sorted(merged.values(), key=lambda row: row["name"])


def _write_results(path: Path, results, extra=None) -> None:
    payload = {
        "schema": 1,
        "python": platform.python_version(),
        "results": results,
    }
    if extra:
        payload.update(extra)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _search_summary(rows) -> dict:
    """The racing headline: portfolio wall vs the slowest solo member.

    Computed over the *merged* rows (current session plus what the
    file already held), so a partial re-run of one workload keeps the
    summary consistent with the stored results instead of dropping it.
    """
    singles = [
        row
        for row in rows
        if row["extra_info"].get("search_record") == "single"
    ]
    portfolios = [
        row
        for row in rows
        if row["extra_info"].get("search_record") == "portfolio"
    ]
    if not singles or not portfolios:
        return {}
    slowest = max(row["median_seconds"] for row in singles)
    portfolio = portfolios[0]
    return {
        "summary": {
            "portfolio_median_seconds": portfolio["median_seconds"],
            "slowest_single_median_seconds": slowest,
            "portfolio_vs_slowest_single": portfolio["median_seconds"]
            / slowest,
            "portfolio_objective": portfolio["extra_info"].get("objective"),
            "best_single_objective": min(
                row["extra_info"].get("objective", float("inf"))
                for row in singles
            ),
            "evaluations_to_incumbent": portfolio["extra_info"].get(
                "evaluations_to_incumbent"
            ),
        }
    }


def _sched_summary(rows) -> dict:
    """The array-core headline: per-candidate speedup on medium."""
    for row in rows:
        info = row["extra_info"]
        if (
            info.get("sched_record") == "array"
            and info.get("preset") == "medium"
        ):
            return {
                "summary": {
                    "medium_median_array_us": info.get("median_array_us"),
                    "medium_median_object_us": info.get("median_object_us"),
                    "medium_median_scratch_us": info.get("median_scratch_us"),
                    "medium_speedup_vs_object": info.get("speedup_vs_object"),
                    "medium_speedup_vs_scratch": info.get(
                        "speedup_vs_scratch"
                    ),
                }
            }
    return {}


def _eval_summary(rows) -> dict:
    """The evaluation headline: end-to-end speedup on medium."""
    for row in rows:
        info = row["extra_info"]
        if (
            info.get("eval_record") == "array"
            and info.get("preset") == "medium"
        ):
            return {
                "summary": {
                    "medium_median_array_us": info.get("median_array_us"),
                    "medium_median_object_us": info.get("median_object_us"),
                    "medium_median_decode_always_us": info.get(
                        "median_decode_always_us"
                    ),
                    "medium_speedup_vs_object": info.get("speedup_vs_object"),
                    "medium_speedup_vs_decode_always": info.get(
                        "speedup_vs_decode_always"
                    ),
                }
            }
    return {}


def pytest_sessionfinish(session, exitstatus):
    """Persist per-bench medians after timed runs.

    Engine benchmarks land in ``benchmarks/BENCH_engine.json``; the
    ``bench_search`` workloads (tagged via ``search_record`` in their
    ``extra_info``) land in the repo-root ``BENCH_search.json`` with
    the portfolio-vs-single summary, and the ``bench_sched`` workloads
    (tagged ``sched_record``) in the repo-root ``BENCH_sched.json``
    with the array-core speedup summary and the ``bench_eval``
    workloads (tagged ``eval_record``) in the repo-root
    ``BENCH_eval.json`` with the end-to-end evaluation summary.
    ``--benchmark-disable`` smoke runs leave all four untouched.
    """
    benchmark_session = getattr(session.config, "_benchmarksession", None)
    if benchmark_session is None:
        return
    rows = []
    for bench in benchmark_session.benchmarks:
        stats = getattr(bench, "stats", None)
        if stats is None:  # --benchmark-disable / skipped
            continue
        if hasattr(stats, "stats"):  # Metadata wrapper on some versions
            stats = stats.stats
        rows.append(
            {
                "name": bench.fullname,
                "median_seconds": stats.median,
                "mean_seconds": stats.mean,
                "rounds": stats.rounds,
                "extra_info": dict(bench.extra_info),
            }
        )
    if not rows:
        return
    search_rows = [
        row for row in rows if "search_record" in row["extra_info"]
    ]
    sched_rows = [
        row for row in rows if "sched_record" in row["extra_info"]
    ]
    eval_rows = [
        row for row in rows if "eval_record" in row["extra_info"]
    ]
    engine_rows = [
        row
        for row in rows
        if "search_record" not in row["extra_info"]
        and "sched_record" not in row["extra_info"]
        and "eval_record" not in row["extra_info"]
    ]
    if engine_rows:
        _write_results(
            BENCH_RESULTS_PATH, _merge_rows(BENCH_RESULTS_PATH, engine_rows)
        )
    if search_rows:
        merged = _merge_rows(BENCH_SEARCH_PATH, search_rows)
        _write_results(
            BENCH_SEARCH_PATH, merged, extra=_search_summary(merged)
        )
    if sched_rows:
        merged = _merge_rows(BENCH_SCHED_PATH, sched_rows)
        _write_results(
            BENCH_SCHED_PATH, merged, extra=_sched_summary(merged)
        )
    if eval_rows:
        merged = _merge_rows(BENCH_EVAL_PATH, eval_rows)
        _write_results(
            BENCH_EVAL_PATH, merged, extra=_eval_summary(merged)
        )

#: Current-application sizes benchmarked per figure (paper: 40..320).
BENCH_SIZES = (8, 16, 24)

#: Existing-application size (paper: 400).
BENCH_EXISTING = 40

#: SA iteration budget for the reference strategy.
BENCH_SA_ITERATIONS = 400


def bench_params(size: int) -> ScenarioParams:
    """Scenario parameters of one benchmark cell."""
    return ScenarioParams(
        n_nodes=6,
        hyperperiod=4800,
        n_existing=BENCH_EXISTING,
        n_current=size,
    )


@pytest.fixture(scope="session")
def scenarios() -> dict:
    """One scenario per benchmarked current-application size."""
    return {size: build_scenario(bench_params(size), seed=1) for size in BENCH_SIZES}


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return ExperimentConfig(
        current_sizes=BENCH_SIZES,
        n_existing=BENCH_EXISTING,
        seeds=(1,),
        sa_iterations=BENCH_SA_ITERATIONS,
        future_apps_per_scenario=8,
    )
