"""Shared fixtures for the benchmark harness.

The benchmarks double as the figure-regeneration harness: each
``bench_fig_*`` file times the strategies on generated scenarios and
attaches the figure's data points (deviations, mapped percentages) as
``extra_info`` so they appear in the pytest-benchmark report.

Every *timed* benchmark run additionally writes
``benchmarks/BENCH_engine.json``: one machine-readable record per
benchmark (median wall time, scenario size and delta on/off taken from
``extra_info``), so the performance trajectory is tracked across PRs
as data instead of living only in prose.  ``--benchmark-disable``
smoke runs leave the file untouched.

Scale: laptop defaults (a few minutes for the whole directory).  The
paper-scale run is driven through the CLI instead
(``python -m repro.experiments all --paper-scale``).
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

import pytest

from repro.experiments.runner import ExperimentConfig
from repro.gen.scenario import Scenario, ScenarioParams, build_scenario

#: Where the machine-readable benchmark results land (committed, so
#: the perf trajectory across PRs is diffable).
BENCH_RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_engine.json"


def pytest_sessionfinish(session, exitstatus):
    """Persist per-bench medians to ``BENCH_engine.json`` after timed runs."""
    benchmark_session = getattr(session.config, "_benchmarksession", None)
    if benchmark_session is None:
        return
    rows = []
    for bench in benchmark_session.benchmarks:
        stats = getattr(bench, "stats", None)
        if stats is None:  # --benchmark-disable / skipped
            continue
        if hasattr(stats, "stats"):  # Metadata wrapper on some versions
            stats = stats.stats
        rows.append(
            {
                "name": bench.fullname,
                "median_seconds": stats.median,
                "mean_seconds": stats.mean,
                "rounds": stats.rounds,
                "extra_info": dict(bench.extra_info),
            }
        )
    if not rows:
        return
    # Merge by benchmark name: a partial run (one bench file, or an
    # aborted session) updates only the rows it actually timed and
    # keeps every other file's trajectory data intact.
    merged = {}
    if BENCH_RESULTS_PATH.exists():
        try:
            previous = json.loads(BENCH_RESULTS_PATH.read_text())
            merged = {row["name"]: row for row in previous.get("results", ())}
        except (ValueError, KeyError, TypeError):
            merged = {}
    merged.update({row["name"]: row for row in rows})
    payload = {
        "schema": 1,
        "python": platform.python_version(),
        "results": sorted(merged.values(), key=lambda row: row["name"]),
    }
    BENCH_RESULTS_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

#: Current-application sizes benchmarked per figure (paper: 40..320).
BENCH_SIZES = (8, 16, 24)

#: Existing-application size (paper: 400).
BENCH_EXISTING = 40

#: SA iteration budget for the reference strategy.
BENCH_SA_ITERATIONS = 400


def bench_params(size: int) -> ScenarioParams:
    """Scenario parameters of one benchmark cell."""
    return ScenarioParams(
        n_nodes=6,
        hyperperiod=4800,
        n_existing=BENCH_EXISTING,
        n_current=size,
    )


@pytest.fixture(scope="session")
def scenarios() -> dict:
    """One scenario per benchmarked current-application size."""
    return {size: build_scenario(bench_params(size), seed=1) for size in BENCH_SIZES}


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return ExperimentConfig(
        current_sizes=BENCH_SIZES,
        n_existing=BENCH_EXISTING,
        seeds=(1,),
        sa_iterations=BENCH_SA_ITERATIONS,
        future_apps_per_scenario=8,
    )
