"""Shard-scaling benchmark for the distributed portfolio race.

The distributed claim under test: sharding the portfolio across N
worker processes divides the race's critical path by (roughly) the
members-per-shard ratio, while the winner stays byte-identical to the
in-process lockstep reference.

One four-member portfolio (MH plus three independently-seeded SA
variants) is raced four ways on the same scenario cell as
``bench_search``: in-process lockstep (the pinned reference), then
sharded over 1, 2 and 4 worker processes in replay mode, plus one
elastic run with mid-race churn.  Two speedup bases are recorded:

* ``measured_speedup`` -- lockstep wall-clock over sharded wall-clock.
  Only meaningful on multi-core machines; on a single-core container
  the shards timeshare one CPU and the ratio hovers around 1.0, so its
  floor (>= 1.5x at 2 shards) is asserted only when ``os.cpu_count()``
  reports at least 2 cores.
* ``critical_path_speedup`` -- lockstep wall-clock over the busiest
  shard's CPU time (``time.process_time`` accounted inside each
  worker).  This is the wall-clock the fleet would achieve with one
  core per shard, it is core-count independent, and its floor
  (>= 2.5x at 4 shards) is asserted always.

Every run writes ``BENCH_portfolio.json`` at the repository root --
winner identity, objective, evaluation counts, both speedup bases and
the core count -- so the scaling trajectory stays diffable across PRs.
The file is written on plain smoke runs too (``--benchmark-disable``
or a bare ``pytest benchmarks/bench_portfolio.py``): the timing here
is manual, not pytest-benchmark's.

Run:  pytest benchmarks/bench_portfolio.py -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments.runner import run_portfolio, strategy_for_family
from repro.gen import families
from repro.search.distributed import DistributedPortfolioRunner

BENCH_FAMILY = "uniform-baseline"
BENCH_PRESET = "medium"
BENCH_SEED = 1

#: SA iteration budget per variant.  Long enough that the four walks
#: diverge: early on the variants overlap heavily and lockstep serves
#: much of the race from cross-member cache hits, which a solo shard
#: must recompute -- the scaling headroom grows with walk length.
BENCH_SA_ITERATIONS = 1000

#: The racing portfolio, in racing order: four independently-seeded SA
#: streams (seed offset k * 101 per variant), deliberately
#: equal-weight so the 4-shard split is one member per shard.
MEMBERS = ("SA", "SA@2", "SA@3", "SA@4")

SHARD_COUNTS = (1, 2, 4)

#: Floors enforced by the smoke assertions.
MEASURED_FLOOR_AT_2 = 1.5
CRITICAL_PATH_FLOOR_AT_4 = 2.5

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_portfolio.json"


@pytest.fixture(scope="module")
def search_spec():
    family = families.get_family(BENCH_FAMILY)
    return family.build(BENCH_PRESET, seed=BENCH_SEED).spec()


def timed_race(spec, shards: int = 0, elastic: bool = False, repeats: int = 2):
    """Best-of-``repeats`` timing (single-core containers are noisy).

    Sharded runs are ranked by their critical path (the busiest
    shard's CPU time -- the asserted basis); lockstep by wall-clock.
    """
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_portfolio(
            spec,
            MEMBERS,
            seed=BENCH_SEED,
            sa_iterations=BENCH_SA_ITERATIONS,
            shards=shards,
            elastic=elastic,
        )
        wall = time.perf_counter() - start
        busy = list(getattr(result, "shard_busy_seconds", ()))
        key = max(busy) if busy else wall
        if best is None or key < best[0]:
            best = (key, result, wall)
    return best[1], best[2]


def outcome_row(result, wall: float, lockstep_wall: float) -> dict:
    row = {
        "wall_seconds": round(wall, 4),
        "measured_speedup": round(lockstep_wall / wall, 3),
        "winner": result.winner.name if result.winner else None,
        "objective": result.objective,
        "evaluations": result.evaluations,
        "members": [
            [m.name, m.evaluations_served] for m in result.members
        ],
    }
    busy = list(getattr(result, "shard_busy_seconds", ()))
    if busy:
        critical = max(busy)
        row["critical_path_seconds"] = round(critical, 4)
        row["critical_path_speedup"] = (
            round(lockstep_wall / critical, 3) if critical > 0 else None
        )
        row["shard_busy_seconds"] = [round(b, 4) for b in busy]
        row["respawns"] = result.respawns
    return row


@pytest.fixture(scope="module")
def fleet(search_spec):
    """Run the whole matrix once; every test asserts against it."""
    lockstep, lockstep_wall = timed_race(search_spec)
    rows = {"lockstep": outcome_row(lockstep, lockstep_wall, lockstep_wall)}
    for shards in SHARD_COUNTS:
        result, wall = timed_race(search_spec, shards=shards)
        rows[f"shards={shards}"] = outcome_row(result, wall, lockstep_wall)

    # Elastic churn: start on 2 shards, add a third after the first
    # member finishes, then drain and remove shard 0 -- the winner must
    # still match lockstep.
    churn_members = [
        strategy_for_family(name, BENCH_SEED, True, 1, BENCH_SA_ITERATIONS)
        for name in MEMBERS
    ]
    start = time.perf_counter()
    churned = DistributedPortfolioRunner(
        churn_members,
        shards=2,
        mode="elastic",
        elastic_plan=[
            {"after_done": 1, "action": "add"},
            {"after_done": 2, "action": "remove", "shard": 0},
        ],
    ).run(search_spec)
    rows["elastic-churn"] = outcome_row(
        churned, time.perf_counter() - start, lockstep_wall
    )

    payload = {
        "cores": os.cpu_count(),
        "family": BENCH_FAMILY,
        "preset": BENCH_PRESET,
        "seed": BENCH_SEED,
        "sa_iterations": BENCH_SA_ITERATIONS,
        "members": list(MEMBERS),
        "floors": {
            "measured_at_2_shards": MEASURED_FLOOR_AT_2,
            "critical_path_at_4_shards": CRITICAL_PATH_FLOOR_AT_4,
        },
        "results": rows,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def test_sharded_winner_matches_lockstep(fleet):
    """Free-mode replay racing is byte-identical for any shard count."""
    reference = fleet["results"]["lockstep"]
    for shards in SHARD_COUNTS:
        row = fleet["results"][f"shards={shards}"]
        assert row["winner"] == reference["winner"]
        assert row["objective"] == reference["objective"]
        assert row["members"] == reference["members"]


def test_elastic_churn_matches_lockstep(fleet):
    reference = fleet["results"]["lockstep"]
    row = fleet["results"]["elastic-churn"]
    assert row["winner"] == reference["winner"]
    assert row["objective"] == reference["objective"]
    assert row["members"] == reference["members"]


def test_critical_path_speedup_floor(fleet):
    """>= 2.5x at 4 shards on the per-core basis, any machine."""
    row = fleet["results"]["shards=4"]
    assert row["critical_path_speedup"] is not None
    assert row["critical_path_speedup"] >= CRITICAL_PATH_FLOOR_AT_4


def test_measured_speedup_floor(fleet):
    """>= 1.5x wall-clock at 2 shards -- needs real cores to show."""
    cores = fleet["cores"] or 1
    if cores < 2:
        pytest.skip(f"single-core machine (cores={cores}); wall-clock "
                    "speedup needs parallel hardware")
    row = fleet["results"]["shards=2"]
    assert row["measured_speedup"] >= MEASURED_FLOOR_AT_2
