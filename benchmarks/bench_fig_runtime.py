"""Figure (slide 16): average design time of AH, MH and SA.

The pytest-benchmark table *is* the figure: one row per
(strategy, current-size) cell, wall-clock per design run.  The paper's
ordering AH << MH << SA and the growth with current-application size
must reproduce; absolute values are hardware-dependent.

Run:  pytest benchmarks/bench_fig_runtime.py --benchmark-only
"""

import pytest

from repro.core.strategy import make_strategy

from benchmarks.conftest import BENCH_SA_ITERATIONS, BENCH_SIZES


@pytest.mark.parametrize("size", BENCH_SIZES)
def test_runtime_ah(benchmark, scenarios, size):
    """AH design time (validity-only Initial Mapping)."""
    scenario = scenarios[size]
    result = benchmark(lambda: make_strategy("AH").design(scenario.spec()))
    assert result.valid
    benchmark.extra_info["objective"] = round(result.objective, 2)


@pytest.mark.parametrize("size", BENCH_SIZES)
def test_runtime_mh(benchmark, scenarios, size):
    """MH design time (IM + steepest descent)."""
    scenario = scenarios[size]
    result = benchmark.pedantic(
        lambda: make_strategy("MH").design(scenario.spec()),
        rounds=2,
        iterations=1,
    )
    assert result.valid
    benchmark.extra_info["objective"] = round(result.objective, 2)


@pytest.mark.parametrize("size", BENCH_SIZES)
def test_runtime_sa(benchmark, scenarios, size):
    """SA design time (annealing + polish; the near-optimal reference)."""
    scenario = scenarios[size]
    result = benchmark.pedantic(
        lambda: make_strategy(
            "SA", iterations=BENCH_SA_ITERATIONS, seed=1
        ).design(scenario.spec()),
        rounds=1,
        iterations=1,
    )
    assert result.valid
    benchmark.extra_info["objective"] = round(result.objective, 2)
