"""Benchmarks for the search kernel and the strategy portfolio.

The racing claim under test: racing the whole portfolio over one
shared engine (shared cache, shared delta kernel, lockstep request
scheduling) costs no more wall-clock than the slowest member run
alone -- while returning the best incumbent any member found.  The
sharing is what pays: MH's descent pre-computes the neighbourhood SA's
polish-from-start phase needs, and overlapping neighbourhoods across
members hit each other's cache entries.

Three timed workloads on one family scenario:

* ``single[MH]`` / ``single[SA]`` -- each racing member run solo, its
  own engine (the baseline costs);
* ``portfolio`` -- MH and SA raced to completion over one shared
  engine.

Every benchmark attaches ``extra_info`` (objective, evaluations,
evaluations-to-incumbent) and the conftest emits the machine-readable
``BENCH_search.json`` at the repository root -- including the
``portfolio_vs_slowest_single`` wall-clock ratio (the ``<= 1.0``
claim) -- so the portfolio trajectory stays diffable across PRs.  The
``--benchmark-disable`` smoke run still executes every workload once
and asserts the racing invariants (winner no worse than the best solo
member, exact member/solo evaluation equality).

Run:  pytest benchmarks/bench_search.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_portfolio, strategy_for_family
from repro.gen import families

#: The benchmarked scenario cell (medium: objectives stay non-trivial,
#: so the racing members genuinely disagree).
BENCH_FAMILY = "uniform-baseline"
BENCH_PRESET = "medium"
BENCH_SEED = 1

#: SA iteration budget of the racing member (the slow strategy).
BENCH_SA_ITERATIONS = 300

#: The racing portfolio, in racing order.
MEMBERS = ("MH", "SA")


@pytest.fixture(scope="module")
def search_spec():
    family = families.get_family(BENCH_FAMILY)
    return family.build(BENCH_PRESET, seed=BENCH_SEED).spec()


@pytest.fixture(scope="module")
def solo_results(search_spec):
    """One untimed solo run per member: budgets and reference objectives."""
    results = {}
    for name in MEMBERS:
        results[name] = strategy_for_family(
            name, BENCH_SEED, True, 1, BENCH_SA_ITERATIONS
        ).design(search_spec)
        assert results[name].valid
    return results


def solo_strategy(name: str):
    return strategy_for_family(name, BENCH_SEED, True, 1, BENCH_SA_ITERATIONS)


@pytest.mark.parametrize("name", MEMBERS)
def test_single_strategy(benchmark, search_spec, name):
    """Baseline: one racing member alone on its own engine."""
    result = benchmark(lambda: solo_strategy(name).design(search_spec))
    assert result.valid
    search = result.search
    benchmark.extra_info.update(
        {
            "search_record": "single",
            "member": name,
            "objective": result.objective,
            "evaluations": result.evaluations,
            "evaluations_to_incumbent": (
                search.evaluations_to_incumbent if search else 0
            ),
        }
    )


def test_portfolio_race(benchmark, search_spec, solo_results):
    """The full MH + SA race over one shared engine.

    Every member runs to its natural completion (same trajectory as
    solo), yet the shared cache makes the whole portfolio cheaper than
    the slowest member alone: MH's descent pre-pays SA's
    polish-from-start phase and the overlapping neighbourhoods hit
    each other's entries.  This is the ``BENCH_search.json`` headline:
    ``portfolio_vs_slowest_single <= 1.0``.
    """

    def race():
        return run_portfolio(
            search_spec,
            MEMBERS,
            seed=BENCH_SEED,
            sa_iterations=BENCH_SA_ITERATIONS,
        )

    result = benchmark(race)
    assert result.valid
    # Uncut racing preserves every member's solo trajectory, so the
    # winner is exactly the best solo result.
    best_solo = min(r.objective for r in solo_results.values())
    assert result.objective <= best_solo
    assert result.evaluations == sum(
        r.evaluations for r in solo_results.values()
    )
    winner = result.winner
    benchmark.extra_info.update(
        {
            "search_record": "portfolio",
            "members": list(MEMBERS),
            "objective": result.objective,
            "winner": winner.name,
            "evaluations": result.evaluations,
            "cache_hits": result.cache_hits,
            "evaluations_to_incumbent": (
                winner.result.search.evaluations_to_incumbent
                if winner.result.search
                else 0
            ),
        }
    )
