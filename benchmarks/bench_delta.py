"""Benchmarks pinning the incremental (delta) evaluation speedup.

Per scenario family (medium preset), one MH-style neighbourhood of the
Initial-Mapping design is evaluated three ways:

* **delta** -- through :class:`repro.engine.delta.DeltaEvaluator`:
  each child is rescheduled from the parent's trace checkpoints and
  its metrics reuse every clean resource;
* **cold** -- the engine's optimized full evaluation (what
  ``--no-delta`` runs): compiled scheduling plus the memoized metric
  core, evaluated from scratch per candidate;
* **scratch** -- the pre-kernel evaluation shape: compiled scheduling
  plus the original from-scratch component metrics
  (``metric_c1p``/``metric_c1m``/``metric_c2p``/``metric_c2m``), i.e.
  a full rescheduling *and* full metric recomputation per candidate,
  with none of the kernel's reuse.  (The component functions keep
  their original implementations and are pinned to the fast core by
  ``tests/core/test_metrics.py``.)

The headline number is the per-candidate median speedup of delta over
scratch; delta over cold isolates what checkpoint resumes and dirty-set
metric reuse buy on top of the shared fast paths.  Each benchmark also
asserts a minimum delta hit rate, so CI's ``--benchmark-disable`` smoke
run catches a kernel that silently regresses to full rescheduling.

Run:  pytest benchmarks/bench_delta.py --benchmark-only
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.core.improvement import DescentParams, generate_moves
from repro.core.initial_mapping import InitialMapper
from repro.core.metrics import (
    metric_c1m,
    metric_c1p,
    metric_c2m,
    metric_c2p,
)
from repro.core.transformations import CandidateDesign
from repro.engine import CompiledSpec, DeltaEvaluator, evaluate_candidate
from repro.gen import families
from repro.sched.list_scheduler import ListScheduler

#: Families benchmarked at their medium preset.
BENCH_FAMILIES = (
    "uniform-baseline",
    "hetero-speed",
    "pipeline",
    "hetero-mixed",
)

#: Guard: at least this share of neighbourhood moves must go through
#: the incremental path (CI smoke fails if the kernel silently falls
#: back to full rescheduling).
MIN_DELTA_HIT_RATE = 0.5

_CONTEXTS: dict = {}


def _context(family_name: str):
    """Scenario, kernel and neighbourhood of one family (built once)."""
    if family_name in _CONTEXTS:
        return _CONTEXTS[family_name]
    family = families.get_family(family_name)
    # Medium preset; families without one benchmark their largest.
    preset = (
        "medium" if "medium" in family.preset_names else family.preset_names[-1]
    )
    scenario = family.build(preset, seed=1)
    spec = scenario.spec()
    compiled = CompiledSpec(spec)
    scheduler = ListScheduler(spec.architecture)
    delta = DeltaEvaluator(compiled, scheduler)
    mapper = InitialMapper(spec.architecture)
    mapping, _ = mapper.try_map_and_schedule(
        spec.current, base=spec.base_schedule, compiled=compiled
    )
    parent = evaluate_candidate(
        spec,
        compiled,
        scheduler,
        CandidateDesign(mapping, dict(compiled.default_priorities)),
        record_trace=True,
    )
    moves = generate_moves(spec, parent, DescentParams(pool_size=8))
    context = (spec, compiled, scheduler, delta, parent, moves, preset)
    _CONTEXTS[family_name] = context
    return context


def _scratch_evaluate(spec, compiled, scheduler, child):
    """Full rescheduling + from-scratch metrics (the pre-kernel shape)."""
    result = scheduler.try_schedule(
        spec.current,
        child.mapping,
        priorities=child.priorities,
        message_delays=child.message_delays,
        compiled=compiled,
    )
    if not result.success:
        return None
    schedule = result.schedule
    policy = spec.weights.binpack_policy
    return (
        metric_c1p(schedule, spec.future, policy),
        metric_c1m(schedule, spec.future, policy),
        metric_c2p(schedule, spec.future),
        metric_c2m(schedule, spec.future),
    )


def _per_candidate(fn, items, repeats: int = 3):
    """Median per-item wall time of ``fn`` over ``items``."""
    times = []
    for item in items:
        best = min(
            _timed_once(fn, item) for _ in range(repeats)
        )
        times.append(best)
    return statistics.median(times)


def _timed_once(fn, item):
    start = time.perf_counter()
    fn(item)
    return time.perf_counter() - start


def _speedup_info(family_name):
    """Per-candidate medians and speedups for ``extra_info``."""
    spec, compiled, scheduler, delta, parent, moves, _ = _context(
        family_name
    )
    children = {move: move.apply(parent.design) for move in moves}
    median_delta = _per_candidate(
        lambda move: delta.evaluate_move(parent, move, children[move]), moves
    )
    median_cold = _per_candidate(
        lambda move: evaluate_candidate(
            spec, compiled, scheduler, children[move], record_trace=True
        ),
        moves,
    )
    median_scratch = _per_candidate(
        lambda move: _scratch_evaluate(
            spec, compiled, scheduler, children[move]
        ),
        moves,
    )
    return {
        "n_moves": len(moves),
        "median_delta_us": round(median_delta * 1e6, 1),
        "median_cold_us": round(median_cold * 1e6, 1),
        "median_scratch_us": round(median_scratch * 1e6, 1),
        "speedup_vs_scratch": round(median_scratch / median_delta, 2),
        "speedup_vs_cold": round(median_cold / median_delta, 2),
    }


@pytest.mark.parametrize("family_name", BENCH_FAMILIES)
def test_delta_neighbourhood(benchmark, family_name):
    """Incremental evaluation of one MH neighbourhood (delta on)."""
    spec, compiled, scheduler, delta, parent, moves, preset = _context(
        family_name
    )

    def run():
        hits = 0
        for move in moves:
            _, used = delta.evaluate_move(parent, move)
            hits += used
        return hits

    hits = benchmark(run)
    hit_rate = hits / len(moves)
    assert hit_rate >= MIN_DELTA_HIT_RATE, (
        f"delta kernel regressed to full rescheduling: hit rate "
        f"{hit_rate:.2f} < {MIN_DELTA_HIT_RATE}"
    )
    benchmark.extra_info["family"] = family_name
    benchmark.extra_info["preset"] = preset
    benchmark.extra_info["delta"] = "on"
    benchmark.extra_info["scenario_jobs"] = compiled.total_jobs
    benchmark.extra_info["delta_hit_rate"] = round(hit_rate, 3)
    benchmark.extra_info.update(_speedup_info(family_name))


@pytest.mark.parametrize("family_name", BENCH_FAMILIES)
def test_cold_neighbourhood(benchmark, family_name):
    """The same neighbourhood, full evaluation per candidate (delta off)."""
    spec, compiled, scheduler, delta, parent, moves, preset = _context(
        family_name
    )
    children = [move.apply(parent.design) for move in moves]

    def run():
        for child in children:
            evaluate_candidate(spec, compiled, scheduler, child)

    benchmark(run)
    benchmark.extra_info["family"] = family_name
    benchmark.extra_info["preset"] = preset
    benchmark.extra_info["delta"] = "off"
    benchmark.extra_info["scenario_jobs"] = compiled.total_jobs


@pytest.mark.parametrize("family_name", BENCH_FAMILIES)
def test_scratch_neighbourhood(benchmark, family_name):
    """The pre-kernel shape: full reschedule + from-scratch metrics."""
    spec, compiled, scheduler, delta, parent, moves, preset = _context(
        family_name
    )
    children = [move.apply(parent.design) for move in moves]

    def run():
        for child in children:
            _scratch_evaluate(spec, compiled, scheduler, child)

    benchmark(run)
    benchmark.extra_info["family"] = family_name
    benchmark.extra_info["preset"] = preset
    benchmark.extra_info["delta"] = "scratch-reference"
    benchmark.extra_info["scenario_jobs"] = compiled.total_jobs
