#!/usr/bin/env python3
"""The incremental-design story of slides 7-8, on the search kernel.

An existing application is already running (frozen schedule).  The
current application is mapped twice: once with the future-blind Ad-Hoc
approach and once with the Mapping Heuristic.  Both designs are valid
-- but when concrete future applications arrive, far more of them fit
into the slack left by MH than into the slack left by AH ("the future
application does not fit!", slide 8b).

Since the search-kernel refactor every strategy is a configuration of
one budgeted search loop: the run below also reports the kernel's
per-search accounting (steps, evaluations-to-incumbent) and shows how
an evaluation budget trades design quality for time -- the incumbent
is monotone in the budget, so a tighter budget never *improves* the
design, it only stops polishing it sooner.

Run:  python examples/incremental_design.py
"""

from repro import (
    ScenarioParams,
    build_scenario,
    design_application,
    fits_future_application,
    generate_future_application,
)
from repro.search import Budget
from repro.utils.rng import spawn_rngs


def main() -> None:
    params = ScenarioParams(n_nodes=6, n_existing=40, n_current=20)
    scenario = build_scenario(params, seed=6)
    print(
        f"existing application: {scenario.existing.process_count} processes "
        f"(frozen), current application: {scenario.current.process_count} "
        f"processes"
    )

    designs = {}
    for strategy in ("AH", "MH"):
        result = design_application(scenario.spec(), strategy)
        designs[strategy] = result
        line = f"{strategy}: valid={result.valid}  {result.metrics.summary()}"
        if result.search is not None:
            line += (
                f"  [{result.search.steps} search steps, best found after "
                f"{result.search.evaluations_to_incumbent} evaluations]"
            )
        print(line)

    print("\nThe same MH under shrinking evaluation budgets:")
    for budget in (200, 50, 10):
        budgeted = design_application(
            scenario.spec(), "MH", budget=Budget(max_evaluations=budget)
        )
        print(
            f"  budget {budget:>4} evaluations -> objective "
            f"{budgeted.objective:8.2f} ({budgeted.search.stop_reason})"
        )

    print("\nNow future applications arrive...")
    outcomes = {"AH": 0, "MH": 0}
    n_futures = 12
    for i, rng in enumerate(spawn_rngs(2024, n_futures)):
        future_app = generate_future_application(
            scenario, rng=rng, name=f"future{i}"
        )
        verdicts = []
        for strategy in ("AH", "MH"):
            fits = fits_future_application(
                designs[strategy].schedule, future_app, scenario.architecture
            )
            outcomes[strategy] += int(fits)
            verdicts.append(f"{strategy}: {'fits' if fits else 'DOES NOT FIT'}")
        print(
            f"  future{i} ({future_app.process_count} processes): "
            + ", ".join(verdicts)
        )

    print(
        f"\nmapped futures -- AH: {outcomes['AH']}/{n_futures}, "
        f"MH: {outcomes['MH']}/{n_futures}"
    )
    print(
        "The metric-driven design (MH) keeps room for the future family; "
        "the ad-hoc design does not."
    )


if __name__ == "__main__":
    main()
