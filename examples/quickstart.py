#!/usr/bin/env python3
"""Quickstart: design a current application with the Mapping Heuristic.

Generates a complete incremental-design scenario -- a 6-node TDMA
platform already running an existing application -- then maps and
schedules a new (current) application with each of the paper's three
strategies and compares the design metrics.

Run:  python examples/quickstart.py
"""

from repro import (
    ScenarioParams,
    analyze_design,
    build_scenario,
    design_application,
    render_gantt,
    render_report,
)


def main() -> None:
    # A scenario is a deterministic function of (params, seed).
    params = ScenarioParams(n_nodes=4, n_existing=30, n_current=12)
    scenario = build_scenario(params, seed=42)

    print(
        f"platform: {len(scenario.architecture)} nodes, TDMA round "
        f"{scenario.architecture.bus.round_length} tu"
    )
    print(
        f"existing: {scenario.existing.process_count} processes (frozen), "
        f"current: {scenario.current.process_count} processes"
    )
    print(
        f"future family: T_min={scenario.future.t_min} "
        f"t_need={scenario.future.t_need} b_need={scenario.future.b_need}"
    )
    print()

    results = {}
    for strategy in ("AH", "MH", "SA"):
        kwargs = {"iterations": 600, "seed": 1} if strategy == "SA" else {}
        result = design_application(scenario.spec(), strategy, **kwargs)
        results[strategy] = result
        status = result.metrics.summary() if result.valid else "INVALID"
        print(
            f"{strategy}: {status}  "
            f"[{result.runtime_seconds:.2f}s, {result.evaluations} evals]"
        )

    print()
    print("Mapping Heuristic schedule (first part of the hyperperiod):")
    print(render_gantt(results["MH"].schedule, width_limit=110))

    print()
    report = analyze_design(
        results["MH"].schedule,
        [scenario.existing, scenario.current],
        scenario.future,
    )
    print(render_report(report))


if __name__ == "__main__":
    main()
