#!/usr/bin/env python3
"""Extension (slide 18 / CODES 2001): modifying existing applications.

Sometimes the current application simply cannot be mapped without
touching anything (requirement (a) is unsatisfiable).  The follow-up
work allows a subset of the existing applications to be remapped, at a
per-application *modification cost* (re-design and re-testing effort),
minimizing the total cost.

This example builds a platform whose two nodes are blocked until t=40
by two frozen legacy applications, then integrates an urgent current
application with a deadline of 30: the pure incremental flow fails, the
modification-aware flow remaps exactly the cheaper legacy application.

Run:  python examples/engineering_change.py
"""

from repro import (
    Application,
    Architecture,
    DiscreteDistribution,
    ExistingApplication,
    FutureCharacterization,
    Message,
    Node,
    Process,
    ProcessGraph,
    Slot,
    TdmaBus,
    design_with_modifications,
    render_gantt,
)


def legacy(name: str, wcet: int) -> Application:
    graph = ProcessGraph("g0", period=80)
    graph.add_process(Process(f"{name}.main", {"N1": wcet, "N2": wcet}))
    return Application(name, [graph])


def urgent_current() -> Application:
    graph = ProcessGraph("g0", period=80, deadline=30)
    graph.add_process(Process("cur.sense", {"N1": 8, "N2": 8}))
    graph.add_process(Process("cur.plan", {"N1": 9, "N2": 9}))
    graph.add_process(Process("cur.act", {"N1": 6, "N2": 6}))
    graph.add_message(Message("cur.m0", "cur.sense", "cur.plan", 4))
    graph.add_message(Message("cur.m1", "cur.plan", "cur.act", 4))
    return Application("current", [graph])


def main() -> None:
    architecture = Architecture(
        [Node("N1"), Node("N2")],
        TdmaBus([Slot("N1", 4, 8), Slot("N2", 4, 8)]),
    )
    existing = [
        ExistingApplication(legacy("engine-ctl", 40), modification_cost=3.0),
        ExistingApplication(legacy("body-ctl", 40), modification_cost=25.0),
    ]
    future = FutureCharacterization(
        t_min=40,
        t_need=8,
        b_need=4,
        wcet_distribution=DiscreteDistribution((4, 8), (0.5, 0.5)),
        message_size_distribution=DiscreteDistribution((2, 4), (0.5, 0.5)),
    )

    print("current application: 3-process chain, deadline 30 tu")
    print("existing: engine-ctl (cost 3), body-ctl (cost 25), both 40 tu\n")

    outcome = design_with_modifications(
        architecture, existing, urgent_current(), future
    )
    if not outcome.valid:
        print("no design found even with full redesign")
        return
    if outcome.modified:
        print(
            f"requirement (a) was unsatisfiable; modified "
            f"{outcome.modified} at total cost {outcome.total_cost}"
        )
    else:
        print("pure incremental design succeeded; nothing modified")
    print(f"subsets tried: {outcome.attempts}")
    print(f"design metrics: {outcome.design.metrics.summary()}\n")
    print(render_gantt(outcome.design.schedule, scale=1, width_limit=90))


if __name__ == "__main__":
    main()
