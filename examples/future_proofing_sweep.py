#!/usr/bin/env python3
"""Sweep the future-family demand and watch the design adapt.

For a fixed scenario, the future characterization's processor demand
``t_need`` is swept from undemanding to beyond the platform's free
capacity.  For each point the Mapping Heuristic re-designs the current
application; the sweep shows

* the objective staying at 0 while the demand fits comfortably,
* MH buying headroom (higher C2P than AH) as demand grows, and
* both designs saturating once the demand exceeds what any mapping
  could provide -- the unavoidable baseline cost.

Run:  python examples/future_proofing_sweep.py
"""


from repro import (
    FutureCharacterization,
    ScenarioParams,
    build_scenario,
    design_application,
)
from repro.core.strategy import DesignSpec


def main() -> None:
    scenario = build_scenario(
        ScenarioParams(n_nodes=4, n_existing=30, n_current=14), seed=5
    )
    base_future = scenario.future
    free_guess = base_future.t_need  # rho_proc * expected free per window

    print(
        f"platform: {len(scenario.architecture)} nodes, "
        f"T_min = {base_future.t_min} tu"
    )
    print(f"{'t_need':>8} | {'AH C2P':>7} {'AH obj':>7} | {'MH C2P':>7} {'MH obj':>7}")
    print("-" * 48)
    for fraction in (0.2, 0.4, 0.6, 0.8, 1.0, 1.2):
        t_need = max(1, round(fraction * free_guess))
        future = FutureCharacterization(
            t_min=base_future.t_min,
            t_need=t_need,
            b_need=base_future.b_need,
            wcet_distribution=base_future.wcet_distribution,
            message_size_distribution=base_future.message_size_distribution,
        )
        spec = DesignSpec(
            architecture=scenario.architecture,
            current=scenario.current,
            future=future,
            base_schedule=scenario.base_schedule,
        )
        ah = design_application(spec, "AH")
        mh = design_application(spec, "MH")
        print(
            f"{t_need:>8} | {ah.metrics.c2p:>7} {ah.objective:>7.1f} "
            f"| {mh.metrics.c2p:>7} {mh.objective:>7.1f}"
        )

    print(
        "\nMH tracks the demand by redistributing the current application's "
        "slack;\nonce t_need exceeds the reachable per-window slack, the "
        "baseline cost is unavoidable for every strategy."
    )


if __name__ == "__main__":
    main()
