#!/usr/bin/env python3
"""The two design criteria, on the crafted layouts of slides 12-13.

First criterion (slack *sizes*, metric C1): the same total slack can be
clustered into one contiguous chunk (everything future fits, C1=0%) or
shattered into fragments too small for any future process (C1 large).

Second criterion (slack *distribution*, metric C2): the same total
slack can be concentrated in one half of the hyperperiod (a future
application with period T_min starves in the other half, C2 = 0) or
spread so every T_min window keeps t_need available (C2 >= t_need).

Run:  python examples/design_metrics.py
"""

from repro import (
    Architecture,
    FutureCharacterization,
    Node,
    SystemSchedule,
    evaluate_design,
)
from repro.core.future import DiscreteDistribution
from repro.core.metrics import metric_c1p, metric_c2p


def single_node_platform() -> Architecture:
    return Architecture([Node("N1")], slot_length=10, slot_capacity=16)


def show_c1() -> None:
    """Slide 12: clustering the same slack changes what fits."""
    arch = single_node_platform()
    # Future family: one window of 160 tu; needs 80 tu of processes
    # shaped 40+40 (so fragments of 20 are useless).
    future = FutureCharacterization(
        t_min=160,
        t_need=80,
        b_need=1,
        wcet_distribution=DiscreteDistribution((40,), (1.0,)),
    )

    print("First criterion (C1P): same total slack, different clustering")
    # (a) contiguous slack of 80 tu -> everything fits.
    contiguous = SystemSchedule(arch, 160)
    contiguous.place_process("X", 0, "N1", 0, 80)
    print(f"  contiguous [80..160) free : C1P = {metric_c1p(contiguous, future):.0f}%")

    # (b) two gaps of 40 -> still fits (each future process needs 40).
    two_gaps = SystemSchedule(arch, 160)
    two_gaps.place_process("X", 0, "N1", 40, 40)
    two_gaps.place_process("Y", 0, "N1", 120, 40)
    print(f"  two gaps of 40 tu         : C1P = {metric_c1p(two_gaps, future):.0f}%")

    # (c) four gaps of 20 -> nothing fits: C1P = 100%.
    fragmented = SystemSchedule(arch, 160)
    for i, start in enumerate((20, 60, 100, 140)):
        fragmented.place_process(f"Z{i}", 0, "N1", start, 20)
    print(f"  four gaps of 20 tu        : C1P = {metric_c1p(fragmented, future):.0f}%")


def show_c2() -> None:
    """Slide 13: distributing the same slack across T_min windows."""
    arch = single_node_platform()
    future = FutureCharacterization(
        t_min=100,
        t_need=40,
        b_need=1,
        wcet_distribution=DiscreteDistribution((20,), (1.0,)),
    )

    print("\nSecond criterion (C2P): same total slack, different distribution")
    # (a) all 80 tu of slack inside the first window; second fully busy.
    lopsided = SystemSchedule(arch, 200)
    lopsided.place_process("A", 0, "N1", 80, 120)
    c2 = metric_c2p(lopsided, future)
    print(
        f"  slack only in window 1    : C2P = {c2} "
        f"({'<' if c2 < future.t_need else '>='} t_need = {future.t_need})"
    )

    # (b) 40 tu of slack in every window -> periodic demand satisfied.
    balanced = SystemSchedule(arch, 200)
    balanced.place_process("A", 0, "N1", 0, 60)
    balanced.place_process("B", 0, "N1", 100, 60)
    c2 = metric_c2p(balanced, future)
    print(
        f"  40 tu free per window     : C2P = {c2} "
        f"({'<' if c2 < future.t_need else '>='} t_need = {future.t_need})"
    )

    print("\nCombined objective (slide 14) for the two layouts:")
    for label, schedule in (("lopsided", lopsided), ("balanced", balanced)):
        metrics = evaluate_design(schedule, future)
        print(f"  {label}: {metrics.summary()}")


def main() -> None:
    show_c1()
    show_c2()


if __name__ == "__main__":
    main()
