#!/usr/bin/env python3
"""Budgeted, resumable portfolio search over one shared engine.

Three acts on a medium-preset scenario family:

1. **Racing.**  MH and SA race over one shared evaluation engine in
   deterministic lockstep, contending for a shared evaluation budget;
   the best incumbent any member finds wins, with member order only
   breaking exact ties.
2. **Budget racing.**  The same race under a tight shared budget: the
   cheap member finishes naturally, the expensive one is cut mid-walk
   ("shared-budget") yet still reports a complete design.
3. **Checkpoint + resume.**  A Metropolis walk is cut by a small step
   budget, serialized to JSON, and resumed -- landing byte-identically
   on the design of an uninterrupted run.

Run:  python examples/portfolio_search.py
"""

import numpy as np

from repro.core.initial_mapping import InitialMapper
from repro.core.strategy import DesignEvaluator
from repro.core.transformations import CandidateDesign
from repro.experiments.runner import run_portfolio
from repro.gen import families
from repro.search import (
    Budget,
    MetropolisAcceptor,
    RandomMoveProposer,
    SearchCheckpoint,
    SearchLoop,
)

FAMILY = "uniform-baseline"
PRESET = "medium"
SEED = 1
SA_ITERATIONS = 300


def show_race(result) -> None:
    for member in result.members:
        search = member.result.search
        stop = search.stop_reason if search is not None else "-"
        marker = "  <-- winner" if result.winner is member else ""
        print(
            f"  {member.name:>3}: objective {member.result.objective:8.2f}  "
            f"({member.evaluations_served} evaluations, stop: {stop})"
            f"{marker}"
        )
    print(
        f"  engine: {result.evaluations} evaluations, "
        f"{result.cache_hits} cache hits "
        f"(members hit each other's entries)"
    )


def main() -> None:
    family = families.get_family(FAMILY)
    scenario = family.build(PRESET, seed=SEED)
    spec = scenario.spec()
    print(
        f"scenario: family {FAMILY}, preset {PRESET} "
        f"({scenario.current.process_count} current processes)\n"
    )

    print("Act 1 -- the full race (every member to completion):")
    full = run_portfolio(
        spec, ("MH", "SA"), seed=SEED, sa_iterations=SA_ITERATIONS
    )
    show_race(full)

    print("\nAct 2 -- racing for a shared budget of 600 evaluations:")
    budgeted = run_portfolio(
        spec,
        ("MH", "SA"),
        seed=SEED,
        sa_iterations=SA_ITERATIONS,
        shared_budget=Budget(max_evaluations=600),
    )
    show_race(budgeted)

    print("\nAct 3 -- cut a Metropolis walk, ship it as JSON, resume it:")

    def walk(max_steps):
        """A fresh, identically seeded walk bounded at ``max_steps``."""
        return SearchLoop(
            RandomMoveProposer(),
            MetropolisAcceptor(temperature=5.0, cooling=0.995),
            Budget(max_steps=max_steps),
            name="walk",
        )

    with DesignEvaluator(spec) as evaluator:
        mapper = InitialMapper(spec.architecture)
        mapping, _ = mapper.try_map_and_schedule(
            spec.current,
            base=spec.base_schedule,
            compiled=evaluator.compiled,
        )
        start = evaluator.evaluate(
            CandidateDesign(
                mapping, dict(evaluator.compiled.default_priorities)
            )
        )

        straight = walk(200).run(
            spec, evaluator, start=start, rng=np.random.default_rng(7)
        )
        cut = walk(80).run(
            spec, evaluator, start=start, rng=np.random.default_rng(7)
        )
        wire = cut.checkpoint.to_json()
        print(
            f"  cut at step {cut.checkpoint.steps} "
            f"(incumbent {cut.incumbent.objective:.2f}); "
            f"checkpoint is {len(wire)} bytes of JSON"
        )
        resumed = walk(200).resume(
            spec, evaluator, SearchCheckpoint.from_json(wire)
        )
        print(
            f"  resumed to step {resumed.stats.steps}: "
            f"incumbent {resumed.incumbent.objective:.2f} vs "
            f"uninterrupted {straight.incumbent.objective:.2f}"
        )
        same = (
            resumed.incumbent.mapping.as_dict()
            == straight.incumbent.mapping.as_dict()
            and resumed.incumbent.priorities == straight.incumbent.priorities
        )
        print(f"  cut+resume == uninterrupted: {same}")


if __name__ == "__main__":
    main()
