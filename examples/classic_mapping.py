#!/usr/bin/env python3
"""The "classic" mapping and scheduling example of slide 5.

Two nodes (N1, N2) connected by a TDMA bus with one slot per node; a
single process graph P1 -> {P2, P3} -> P4 with four messages.  P1 and
P4 run on N1, P2 on N2, P3 on N1; messages m1/m2 (P1->P2) cross the bus
in N1's slot and m3/m4 (P2->P4) in N2's slot, exactly like the rounds
pictured on the slide.

Run:  python examples/classic_mapping.py
"""

from repro import (
    Application,
    Architecture,
    ListScheduler,
    Mapping,
    Message,
    Node,
    Process,
    ProcessGraph,
    Slot,
    TdmaBus,
    render_gantt,
)


def build_platform() -> Architecture:
    """Two heterogeneous nodes; a cycle of two equal slots."""
    nodes = [Node("N1"), Node("N2")]
    bus = TdmaBus([Slot("N1", length=4, capacity=8), Slot("N2", length=4, capacity=8)])
    return Architecture(nodes, bus)


def build_application() -> Application:
    """The four-process graph of the slide."""
    graph = ProcessGraph("g0", period=80, deadline=80)
    graph.add_process(Process("P1", {"N1": 8, "N2": 10}))
    graph.add_process(Process("P2", {"N1": 12, "N2": 9}))
    graph.add_process(Process("P3", {"N1": 10, "N2": 14}))
    graph.add_process(Process("P4", {"N1": 6, "N2": 8}))
    graph.add_message(Message("m1", "P1", "P2", 4))
    graph.add_message(Message("m2", "P1", "P3", 4))
    graph.add_message(Message("m3", "P2", "P4", 4))
    graph.add_message(Message("m4", "P3", "P4", 4))
    return Application("demo", [graph])


def main() -> None:
    architecture = build_platform()
    app = build_application()

    mapping = Mapping(app, architecture)
    mapping.assign("P1", "N1")
    mapping.assign("P2", "N2")  # m1 and m3 must cross the bus
    mapping.assign("P3", "N1")
    mapping.assign("P4", "N1")

    scheduler = ListScheduler(architecture)
    schedule = scheduler.schedule(app, mapping)

    print("Static cyclic schedule (slide 5):")
    print(render_gantt(schedule, scale=1))
    print()
    for entry in sorted(schedule.all_entries(), key=lambda e: e.start):
        print(
            f"  {entry.process_id}: node {entry.node_id}, "
            f"[{entry.start}, {entry.end})"
        )
    print()
    for occ in schedule.bus.all_entries():
        window = schedule.bus.bus.occurrence_window(occ.node_id, occ.round_index)
        print(
            f"  {occ.message_id}: slot of {occ.node_id}, round "
            f"{occ.round_index}, window [{window.start}, {window.end}), "
            f"{occ.size} bytes"
        )
    makespan = max(e.end for e in schedule.all_entries())
    print(f"\nmakespan: {makespan} tu; slack on N1: "
          f"{schedule.total_slack('N1')} tu, N2: {schedule.total_slack('N2')} tu")


if __name__ == "__main__":
    main()
